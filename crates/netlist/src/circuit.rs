//! Arena-based combinational circuit graph.
//!
//! A [`Circuit`] owns two arenas — nets and gates — indexed by the opaque
//! ids [`NetId`] and [`GateId`]. Every net has at most one driver (a
//! primary input or a gate output) and any number of loads (gate input
//! pins or primary outputs). The graph must be acyclic; [`Circuit::topo_order`]
//! both checks this and provides the evaluation/timing order used by the
//! STA and optimizer crates.

use std::collections::HashMap;
use std::fmt;

use crate::cell::CellKind;
use crate::error::NetlistError;

/// Opaque index of a net within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

/// Opaque index of a gate within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GateId(pub(crate) u32);

impl NetId {
    /// Raw index (stable for the lifetime of the circuit).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl GateId {
    /// Raw index (stable for the lifetime of the circuit).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDriver {
    /// The net is a primary input of the circuit.
    PrimaryInput,
    /// The net is driven by the output of a gate.
    Gate(GateId),
}

/// A net: one driver, many loads.
#[derive(Debug, Clone)]
pub struct Net {
    name: String,
    driver: Option<NetDriver>,
    /// `(gate, pin index)` pairs loading this net.
    loads: Vec<(GateId, usize)>,
    is_output: bool,
}

impl Net {
    /// Net name as declared.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The driver, if the net is driven yet.
    pub fn driver(&self) -> Option<NetDriver> {
        self.driver
    }

    /// Gate input pins loading this net.
    pub fn loads(&self) -> &[(GateId, usize)] {
        &self.loads
    }

    /// Whether the net is marked as a primary output.
    pub fn is_output(&self) -> bool {
        self.is_output
    }

    /// Fan-out count (number of gate input pins driven).
    pub fn fanout(&self) -> usize {
        self.loads.len()
    }
}

/// A gate instance: a cell plus its net connections.
#[derive(Debug, Clone)]
pub struct Gate {
    kind: CellKind,
    inputs: Vec<NetId>,
    output: NetId,
}

impl Gate {
    /// The library cell implementing this gate.
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets, in pin order.
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Output net.
    pub fn output(&self) -> NetId {
        self.output
    }
}

/// A combinational gate-level circuit.
///
/// # Example
///
/// ```
/// use pops_netlist::{CellKind, Circuit};
///
/// # fn main() -> Result<(), pops_netlist::NetlistError> {
/// let mut c = Circuit::new("half_adder");
/// let a = c.add_input("a");
/// let b = c.add_input("b");
/// let s = c.add_gate(CellKind::Xor2, &[a, b], "sum")?;
/// let co = c.add_gate(CellKind::And2, &[a, b], "carry")?;
/// c.mark_output(s);
/// c.mark_output(co);
/// assert_eq!(c.gate_count(), 2);
/// assert_eq!(c.primary_inputs().len(), 2);
/// assert!(c.topo_order().is_ok());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    nets: Vec<Net>,
    gates: Vec<Gate>,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
    by_name: HashMap<String, NetId>,
}

impl Circuit {
    /// Create an empty circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Circuit {
            name: name.into(),
            nets: Vec::new(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Circuit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Primary input nets, in declaration order.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Primary output nets, in declaration order.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// Iterate over all gate ids.
    pub fn gate_ids(&self) -> impl Iterator<Item = GateId> + '_ {
        (0..self.gates.len() as u32).map(GateId)
    }

    /// Iterate over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32).map(NetId)
    }

    /// Access a gate.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Access a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this circuit.
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Look a net up by name.
    pub fn net_by_name(&self, name: &str) -> Option<NetId> {
        self.by_name.get(name).copied()
    }

    /// Create an undriven, unnamed-load net.
    ///
    /// If `name` collides with an existing net, a fresh suffixed name is
    /// generated (netlist builders rely on this for internal nets).
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let mut name = name.into();
        if self.by_name.contains_key(&name) {
            let mut i = 1usize;
            loop {
                let candidate = format!("{name}_{i}");
                if !self.by_name.contains_key(&candidate) {
                    name = candidate;
                    break;
                }
                i += 1;
            }
        }
        let id = NetId(self.nets.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nets.push(Net {
            name,
            driver: None,
            loads: Vec::new(),
            is_output: false,
        });
        id
    }

    /// Declare a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.nets[id.index()].driver = Some(NetDriver::PrimaryInput);
        self.inputs.push(id);
        id
    }

    /// Add a gate driving a freshly created net named `output_name`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::ArityMismatch`] if `inputs` does not match
    /// the cell's pin count, or [`NetlistError::InvalidId`] if an input net
    /// id is out of range.
    pub fn add_gate(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        output_name: impl Into<String>,
    ) -> Result<NetId, NetlistError> {
        let out = self.add_net(output_name);
        self.add_gate_driving(kind, inputs, out)?;
        Ok(out)
    }

    /// Add a gate driving an existing (so far undriven) net.
    ///
    /// # Errors
    ///
    /// As [`Circuit::add_gate`], plus [`NetlistError::MultipleDrivers`] if
    /// `output` already has a driver.
    pub fn add_gate_driving(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
    ) -> Result<GateId, NetlistError> {
        if inputs.len() != kind.num_inputs() {
            return Err(NetlistError::ArityMismatch {
                cell: kind.to_string(),
                expected: kind.num_inputs(),
                got: inputs.len(),
            });
        }
        for &net in inputs.iter().chain(std::iter::once(&output)) {
            if net.index() >= self.nets.len() {
                return Err(NetlistError::InvalidId(format!("net {net}")));
            }
        }
        if self.nets[output.index()].driver.is_some() {
            return Err(NetlistError::MultipleDrivers(
                self.nets[output.index()].name.clone(),
            ));
        }
        let gid = GateId(self.gates.len() as u32);
        for (pin, &net) in inputs.iter().enumerate() {
            self.nets[net.index()].loads.push((gid, pin));
        }
        self.nets[output.index()].driver = Some(NetDriver::Gate(gid));
        self.gates.push(Gate {
            kind,
            inputs: inputs.to_vec(),
            output,
        });
        Ok(gid)
    }

    /// The gate driving a net, if any (`None` for primary inputs and
    /// undriven nets).
    pub fn driver_gate(&self, net: NetId) -> Option<GateId> {
        match self.nets[net.index()].driver {
            Some(NetDriver::Gate(g)) => Some(g),
            _ => None,
        }
    }

    /// Gates loading a net, one entry per connected input pin (a gate
    /// tapping the net on several pins appears once per pin).
    ///
    /// This is the fanout adjacency the incremental timing engine walks
    /// when a net's arrival changes.
    pub fn fanout_gates(&self, net: NetId) -> impl Iterator<Item = GateId> + '_ {
        self.nets[net.index()].loads.iter().map(|&(g, _pin)| g)
    }

    /// Mark a net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        if !self.nets[net.index()].is_output {
            self.nets[net.index()].is_output = true;
            self.outputs.push(net);
        }
    }

    /// Gates in a valid topological (fanin-before-fanout) order.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is
    /// cyclic, or [`NetlistError::UndefinedNet`] if some gate input net has
    /// no driver.
    pub fn topo_order(&self) -> Result<Vec<GateId>, NetlistError> {
        // Kahn's algorithm over gates; a gate becomes ready once all of its
        // input nets are resolved (primary inputs start resolved).
        let mut unresolved: Vec<usize> = self
            .gates
            .iter()
            .map(|g| {
                g.inputs
                    .iter()
                    .filter(|&&n| {
                        !matches!(self.nets[n.index()].driver, Some(NetDriver::PrimaryInput))
                    })
                    .count()
            })
            .collect();
        for gate in &self.gates {
            for &n in &gate.inputs {
                if self.nets[n.index()].driver.is_none() {
                    return Err(NetlistError::UndefinedNet(
                        self.nets[n.index()].name.clone(),
                    ));
                }
            }
        }
        let mut ready: Vec<GateId> = self
            .gate_ids()
            .filter(|&g| unresolved[g.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(self.gates.len());
        while let Some(gid) = ready.pop() {
            order.push(gid);
            let out = self.gates[gid.index()].output;
            for &(load, _) in &self.nets[out.index()].loads {
                unresolved[load.index()] -= 1;
                if unresolved[load.index()] == 0 {
                    ready.push(load);
                }
            }
        }
        if order.len() != self.gates.len() {
            return Err(NetlistError::CombinationalCycle);
        }
        Ok(order)
    }

    /// Logic level of every gate: 1 + max level over fanin gates
    /// (primary inputs are level 0).
    ///
    /// # Errors
    ///
    /// Propagates [`Circuit::topo_order`] errors.
    pub fn logic_levels(&self) -> Result<Vec<usize>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0usize; self.gates.len()];
        for gid in order {
            let mut lvl = 1;
            for &n in self.gates[gid.index()].inputs() {
                if let Some(NetDriver::Gate(src)) = self.nets[n.index()].driver {
                    lvl = lvl.max(level[src.index()] + 1);
                }
            }
            level[gid.index()] = lvl;
        }
        Ok(level)
    }

    /// Depth of the circuit in gate levels (0 for an empty circuit).
    ///
    /// # Errors
    ///
    /// Propagates [`Circuit::topo_order`] errors.
    pub fn depth(&self) -> Result<usize, NetlistError> {
        Ok(self.logic_levels()?.into_iter().max().unwrap_or(0))
    }

    /// Evaluate the circuit on the given primary-input assignment and
    /// return the value of every *named output* net.
    ///
    /// # Errors
    ///
    /// [`NetlistError::MissingInputValue`] if an input has no value,
    /// plus any [`Circuit::topo_order`] error.
    pub fn evaluate(
        &self,
        input_values: &HashMap<&str, bool>,
    ) -> Result<HashMap<String, bool>, NetlistError> {
        let values = self.evaluate_all(input_values)?;
        Ok(self
            .outputs
            .iter()
            .map(|&n| (self.nets[n.index()].name.clone(), values[n.index()]))
            .collect())
    }

    /// Evaluate the circuit and return the value of *every* net, indexed by
    /// [`NetId::index`].
    ///
    /// # Errors
    ///
    /// As [`Circuit::evaluate`].
    pub fn evaluate_all(
        &self,
        input_values: &HashMap<&str, bool>,
    ) -> Result<Vec<bool>, NetlistError> {
        let order = self.topo_order()?;
        let mut values = vec![false; self.nets.len()];
        for &n in &self.inputs {
            let name = self.nets[n.index()].name.as_str();
            match input_values.get(name) {
                Some(&v) => values[n.index()] = v,
                None => return Err(NetlistError::MissingInputValue(name.to_string())),
            }
        }
        let mut buf = Vec::with_capacity(4);
        for gid in order {
            let gate = &self.gates[gid.index()];
            buf.clear();
            buf.extend(gate.inputs.iter().map(|&n| values[n.index()]));
            values[gate.output.index()] = gate.kind.evaluate(&buf);
        }
        Ok(values)
    }

    /// Structural sanity check: every output reachable, every net driven,
    /// acyclic. Builders call this before handing circuits to timing.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`NetlistError`].
    pub fn validate(&self) -> Result<(), NetlistError> {
        for net in &self.nets {
            if net.driver.is_none() && (net.is_output || !net.loads.is_empty()) {
                return Err(NetlistError::UndefinedNet(net.name.clone()));
            }
        }
        self.topo_order()?;
        Ok(())
    }

    /// Total number of gate input pins (a cheap size proxy used in reports).
    pub fn pin_count(&self) -> usize {
        self.gates.iter().map(|g| g.inputs.len()).sum()
    }

    /// Histogram of cell kinds used.
    pub fn cell_histogram(&self) -> HashMap<CellKind, usize> {
        let mut h = HashMap::new();
        for g in &self.gates {
            *h.entry(g.kind).or_insert(0) += 1;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn and_of_two() -> (Circuit, NetId) {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let b = c.add_input("b");
        let n = c.add_gate(CellKind::Nand2, &[a, b], "n").unwrap();
        let y = c.add_gate(CellKind::Inv, &[n], "y").unwrap();
        c.mark_output(y);
        (c, y)
    }

    #[test]
    fn build_and_evaluate() {
        let (c, _) = and_of_two();
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c
                .evaluate(&[("a", a), ("b", b)].into_iter().collect())
                .unwrap();
            assert_eq!(out["y"], a && b);
        }
    }

    #[test]
    fn topo_order_is_fanin_first() {
        let (c, _) = and_of_two();
        let order = c.topo_order().unwrap();
        let pos: HashMap<GateId, usize> = order.iter().enumerate().map(|(i, &g)| (g, i)).collect();
        for gid in c.gate_ids() {
            for &n in c.gate(gid).inputs() {
                if let Some(NetDriver::Gate(src)) = c.net(n).driver() {
                    assert!(pos[&src] < pos[&gid]);
                }
            }
        }
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let err = c.add_gate(CellKind::Nand2, &[a], "n").unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn double_drive_is_rejected() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let n = c.add_gate(CellKind::Inv, &[a], "n").unwrap();
        let err = c.add_gate_driving(CellKind::Inv, &[a], n).unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers(_)));
    }

    #[test]
    fn undriven_loaded_net_fails_validation() {
        let mut c = Circuit::new("t");
        let ghost = c.add_net("ghost");
        let _ = c.add_gate(CellKind::Inv, &[ghost], "y").unwrap();
        assert!(matches!(
            c.validate(),
            Err(NetlistError::UndefinedNet(name)) if name == "ghost"
        ));
    }

    #[test]
    fn net_name_collision_gets_suffixed() {
        let mut c = Circuit::new("t");
        let a = c.add_net("x");
        let b = c.add_net("x");
        assert_ne!(a, b);
        assert_eq!(c.net(a).name(), "x");
        assert_eq!(c.net(b).name(), "x_1");
    }

    #[test]
    fn levels_and_depth() {
        let (c, _) = and_of_two();
        let levels = c.logic_levels().unwrap();
        assert_eq!(levels.iter().max(), Some(&2));
        assert_eq!(c.depth().unwrap(), 2);
    }

    #[test]
    fn fanout_counts_pins() {
        let mut c = Circuit::new("t");
        let a = c.add_input("a");
        let _x = c.add_gate(CellKind::Inv, &[a], "x").unwrap();
        let _y = c.add_gate(CellKind::Inv, &[a], "y").unwrap();
        let _z = c.add_gate(CellKind::Nand2, &[a, a], "z").unwrap();
        // 'a' drives inv, inv and both pins of the nand: 4 pins.
        assert_eq!(c.net(a).fanout(), 4);
    }

    #[test]
    fn missing_input_value_is_reported() {
        let (c, _) = and_of_two();
        let err = c
            .evaluate(&[("a", true)].into_iter().collect())
            .unwrap_err();
        assert!(matches!(err, NetlistError::MissingInputValue(n) if n == "b"));
    }

    #[test]
    fn histogram_counts_cells() {
        let (c, _) = and_of_two();
        let h = c.cell_histogram();
        assert_eq!(h[&CellKind::Nand2], 1);
        assert_eq!(h[&CellKind::Inv], 1);
    }

    #[test]
    fn mark_output_is_idempotent() {
        let (mut c, y) = and_of_two();
        c.mark_output(y);
        c.mark_output(y);
        assert_eq!(c.primary_outputs().len(), 1);
    }
}
