//! A tiny deterministic PRNG (SplitMix64) for reproducible benchmark
//! generation.
//!
//! The library deliberately avoids a `rand` dependency so that the
//! benchmark *suite* is bit-identical across platforms and dependency
//! upgrades — the paper's experiments must be regenerable forever.

/// SplitMix64 pseudo-random generator.
///
/// Passes BigCrush when used as a 64-bit generator; more than adequate for
/// generating benchmark topologies.
///
/// # Example
///
/// ```
/// use pops_netlist::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire-style rejection-free mapping is unnecessary here;
        // modulo bias is irrelevant at these bounds.
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Pick a uniformly random element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Pick an index according to integer weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn weighted(&mut self, weights: &[u32]) -> usize {
        let total: u64 = weights.iter().map(|&w| w as u64).sum();
        assert!(total > 0, "weighted() requires a positive total weight");
        let mut draw = self.next_u64() % total;
        for (i, &w) in weights.iter().enumerate() {
            if draw < w as u64 {
                return i;
            }
            draw -= w as u64;
        }
        unreachable!("draw bounded by total weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(11);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut r = SplitMix64::new(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn weighted_respects_zero_weight_entries() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let i = r.weighted(&[0, 5, 0, 5]);
            assert!(i == 1 || i == 3);
        }
    }

    #[test]
    fn weighted_is_roughly_proportional() {
        let mut r = SplitMix64::new(13);
        let mut counts = [0usize; 2];
        let n = 30_000;
        for _ in 0..n {
            counts[r.weighted(&[1, 3])] += 1;
        }
        let frac = counts[1] as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_bound_panics() {
        SplitMix64::new(0).below(0);
    }
}
