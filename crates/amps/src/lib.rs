//! Industrial-style iterative sizing baseline ("AMPS" substitute).
//!
//! The paper benchmarks POPS against AMPS, Synopsys' transistor-sizing
//! tool, reporting that the deterministic method (a) reaches a slightly
//! better minimum delay, (b) needs less area under hard constraints, and
//! (c) runs about two orders of magnitude faster (Table 1). AMPS is
//! proprietary; this crate provides the class of optimizer it represents:
//!
//! * [`greedy`] — TILOS-style iterative sensitivity sizing: repeatedly
//!   bump the size of the gate with the best delay-gain/area-cost ratio
//!   until the constraint is met;
//! * [`random`] — the "pseudo-random sizing technique" the paper mentions
//!   for minimum-delay search;
//! * [`anneal`] — a simulated-annealing area minimizer under a delay
//!   constraint (ablation).
//!
//! All three work on the same bounded [`pops_delay::TimedPath`]
//! abstraction as the POPS optimizers, so comparisons are apples to
//! apples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod anneal;
pub mod greedy;
pub mod random;

pub use anneal::{anneal_area_under_constraint, AnnealOptions};
pub use greedy::{greedy_min_delay, greedy_size_for_constraint, GreedyOptions, GreedyResult};
pub use random::{random_min_delay, RandomSearchOptions};
