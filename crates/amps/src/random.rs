//! Pseudo-random sizing search.
//!
//! §3.1 of the paper compares its deterministic `Tmin` against "a
//! pseudo-random sizing technique" — global random sampling followed by
//! random local perturbation, the simplest stochastic sizer.

use pops_netlist::rng::SplitMix64;

use pops_delay::{Library, TimedPath};

use crate::greedy::GreedyResult;

/// Options for the random searcher.
#[derive(Debug, Clone, PartialEq)]
pub struct RandomSearchOptions {
    /// Global random samples.
    pub samples: usize,
    /// Local perturbation rounds after the best global sample.
    pub refinement_rounds: usize,
    /// RNG seed (deterministic runs).
    pub seed: u64,
    /// Upper size bound as a multiple of the minimum drive.
    pub max_size_factor: f64,
}

impl Default for RandomSearchOptions {
    fn default() -> Self {
        RandomSearchOptions {
            samples: 2000,
            refinement_rounds: 2000,
            seed: 0xA3B1_05C7,
            max_size_factor: 256.0,
        }
    }
}

/// Randomly search for a minimum-delay sizing.
///
/// Phase 1 samples log-uniform sizings; phase 2 perturbs the best one
/// coordinate at a time, keeping improvements.
pub fn random_min_delay(
    lib: &Library,
    path: &TimedPath,
    options: &RandomSearchOptions,
) -> GreedyResult {
    let mut rng = SplitMix64::new(options.seed);
    let cref = lib.min_drive_ff();
    let cmax = cref * options.max_size_factor;
    let log_span = (cmax / cref).ln();

    let mut best = path.min_sizes(lib);
    let mut best_delay = path.delay(lib, &best).total_ps;
    let mut evaluations = 1usize;

    for _ in 0..options.samples {
        let mut probe = best.clone();
        for p in probe.iter_mut().skip(1) {
            *p = cref * (rng.next_f64() * log_span).exp();
        }
        let d = path.delay(lib, &probe).total_ps;
        evaluations += 1;
        if d < best_delay {
            best_delay = d;
            best = probe;
        }
    }

    for _ in 0..options.refinement_rounds {
        if path.len() < 2 {
            break;
        }
        let i = 1 + rng.below(path.len() - 1);
        let factor = (rng.next_f64() - 0.5).exp(); // e^±0.5 spread
        let old = best[i];
        best[i] = (old * factor).clamp(cref, cmax);
        let d = path.delay(lib, &best).total_ps;
        evaluations += 1;
        if d < best_delay {
            best_delay = d;
        } else {
            best[i] = old;
        }
    }

    GreedyResult {
        total_cin_ff: best.iter().sum(),
        delay_ps: best_delay,
        sizes: best,
        iterations: options.samples + options.refinement_rounds,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_core::bounds::delay_bounds;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn path() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::new(Nor3),
                PathStage::new(Nand2),
                PathStage::new(Inv),
            ],
            2.7,
            120.0,
        )
    }

    #[test]
    fn random_search_improves_on_min_sizing() {
        let lib = lib();
        let p = path();
        let start = p.delay(&lib, &p.min_sizes(&lib)).total_ps;
        let r = random_min_delay(&lib, &p, &RandomSearchOptions::default());
        assert!(r.delay_ps < start);
    }

    #[test]
    fn deterministic_under_a_seed() {
        let lib = lib();
        let p = path();
        let a = random_min_delay(&lib, &p, &RandomSearchOptions::default());
        let b = random_min_delay(&lib, &p, &RandomSearchOptions::default());
        assert_eq!(a.sizes, b.sizes);
    }

    #[test]
    fn pops_tmin_beats_random_search() {
        // Fig. 2: "for each case the minimum value obtained is lower than
        // that resulting from a pseudo-random sizing technique".
        let lib = lib();
        let p = path();
        let rand = random_min_delay(&lib, &p, &RandomSearchOptions::default());
        let pops = delay_bounds(&lib, &p);
        assert!(
            pops.tmin_ps <= rand.delay_ps,
            "pops {} vs random {}",
            pops.tmin_ps,
            rand.delay_ps
        );
    }

    #[test]
    fn more_samples_do_not_hurt() {
        let lib = lib();
        let p = path();
        let small = random_min_delay(
            &lib,
            &p,
            &RandomSearchOptions {
                samples: 50,
                refinement_rounds: 0,
                ..Default::default()
            },
        );
        let large = random_min_delay(
            &lib,
            &p,
            &RandomSearchOptions {
                samples: 5000,
                refinement_rounds: 0,
                ..Default::default()
            },
        );
        assert!(large.delay_ps <= small.delay_ps);
    }
}
