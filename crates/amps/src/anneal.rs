//! Simulated-annealing area minimization under a delay constraint.
//!
//! An ablation baseline: a generic stochastic optimizer given the same
//! objective as the constant-sensitivity method (minimum `ΣC_IN` subject
//! to `T ≤ Tc`). It typically lands close to the deterministic optimum —
//! after a few orders of magnitude more delay evaluations.

use pops_netlist::rng::SplitMix64;

use pops_core::bounds::tmin;
use pops_core::OptimizeError;
use pops_delay::{Library, TimedPath};

use crate::greedy::GreedyResult;

/// Annealing schedule options.
#[derive(Debug, Clone, PartialEq)]
pub struct AnnealOptions {
    /// Moves per temperature level.
    pub moves_per_level: usize,
    /// Temperature levels.
    pub levels: usize,
    /// Initial temperature as a fraction of the initial area.
    pub initial_temp_fraction: f64,
    /// Geometric cooling factor per level.
    pub cooling: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            moves_per_level: 400,
            levels: 60,
            initial_temp_fraction: 0.05,
            cooling: 0.9,
            seed: 0xBEEF_CAFE,
        }
    }
}

/// Minimize total input capacitance subject to `T ≤ tc_ps` by simulated
/// annealing, starting from the minimum-delay sizing.
///
/// # Errors
///
/// [`OptimizeError::Infeasible`] if even the minimum-delay sizing misses
/// the constraint.
pub fn anneal_area_under_constraint(
    lib: &Library,
    path: &TimedPath,
    tc_ps: f64,
    options: &AnnealOptions,
) -> Result<GreedyResult, OptimizeError> {
    let start = tmin(lib, path);
    if start.delay_ps > tc_ps {
        return Err(OptimizeError::Infeasible {
            tc_ps,
            tmin_ps: start.delay_ps,
        });
    }
    let cref = lib.min_drive_ff();
    let mut rng = SplitMix64::new(options.seed);

    let mut current = start.sizes.clone();
    let mut current_area: f64 = current.iter().sum();
    let mut best = current.clone();
    let mut best_area = current_area;
    let mut evaluations = 1usize;

    let mut temp = options.initial_temp_fraction * current_area;
    for _ in 0..options.levels {
        for _ in 0..options.moves_per_level {
            if path.len() < 2 {
                break;
            }
            let i = 1 + rng.below(path.len() - 1);
            let factor = ((rng.next_f64() - 0.5) * 0.6).exp();
            let old = current[i];
            current[i] = (old * factor).max(cref);
            let delay = path.delay(lib, &current).total_ps;
            evaluations += 1;
            if delay > tc_ps {
                current[i] = old; // reject infeasible moves outright
                continue;
            }
            let new_area: f64 = current.iter().sum();
            let delta = new_area - current_area;
            let accept = delta <= 0.0 || rng.next_f64() < (-delta / temp).exp();
            if accept {
                current_area = new_area;
                if new_area < best_area {
                    best_area = new_area;
                    best = current.clone();
                }
            } else {
                current[i] = old;
            }
        }
        temp *= options.cooling;
    }

    let delay_ps = path.delay(lib, &best).total_ps;
    Ok(GreedyResult {
        total_cin_ff: best_area,
        delay_ps,
        sizes: best,
        iterations: options.levels * options.moves_per_level,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_core::bounds::delay_bounds;
    use pops_core::sensitivity::distribute_constraint;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn path() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::new(Nand2),
                PathStage::new(Nor2),
                PathStage::new(Inv),
                PathStage::new(Nand2),
            ],
            2.7,
            100.0,
        )
    }

    #[test]
    fn annealing_stays_feasible() {
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let tc = 1.3 * b.tmin_ps;
        let r = anneal_area_under_constraint(&lib, &p, tc, &AnnealOptions::default()).unwrap();
        assert!(r.delay_ps <= tc * 1.0001);
    }

    #[test]
    fn annealing_recovers_area_from_the_tmin_start() {
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let tc = 1.5 * b.tmin_ps;
        let r = anneal_area_under_constraint(&lib, &p, tc, &AnnealOptions::default()).unwrap();
        let tmin_area: f64 = b.tmin_sizes.iter().sum();
        assert!(r.total_cin_ff < tmin_area);
    }

    #[test]
    fn deterministic_beats_or_matches_annealing_with_far_fewer_evals() {
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let tc = 1.25 * b.tmin_ps;
        let sa = anneal_area_under_constraint(&lib, &p, tc, &AnnealOptions::default()).unwrap();
        let pops = distribute_constraint(&lib, &p, tc).unwrap();
        assert!(
            pops.total_cin_ff <= sa.total_cin_ff * 1.02,
            "pops {} vs anneal {}",
            pops.total_cin_ff,
            sa.total_cin_ff
        );
        assert!(sa.evaluations > 1000);
    }

    #[test]
    fn infeasible_constraint_rejected() {
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let err =
            anneal_area_under_constraint(&lib, &p, 0.5 * b.tmin_ps, &AnnealOptions::default())
                .unwrap_err();
        assert!(matches!(err, OptimizeError::Infeasible { .. }));
    }
}
