//! TILOS-style greedy iterative sizing (refs. [1]–[2] of the paper).
//!
//! The classical industrial loop: evaluate the timing, bump the size of
//! the gate giving the best delay improvement per unit of added area,
//! repeat until the constraint is met. Robust and simple — but it needs
//! one full timing evaluation per candidate move per iteration, which is
//! exactly the "processing time explosive" behaviour Table 1 quantifies
//! against the deterministic constant-sensitivity method.

use pops_core::OptimizeError;
use pops_delay::{Library, TimedPath};

/// Options for the greedy sizer.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyOptions {
    /// Multiplicative size step per accepted move.
    pub step: f64,
    /// Upper size bound as a multiple of the minimum drive.
    pub max_size_factor: f64,
    /// Iteration budget.
    pub max_iterations: usize,
    /// Run the post-pass that shrinks gates back while the constraint
    /// still holds (area recovery).
    pub area_recovery: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            step: 1.15,
            max_size_factor: 4000.0,
            max_iterations: 200_000,
            area_recovery: true,
        }
    }
}

/// Result of a greedy run.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyResult {
    /// Final sizing.
    pub sizes: Vec<f64>,
    /// Achieved delay (ps).
    pub delay_ps: f64,
    /// Total input capacitance (fF).
    pub total_cin_ff: f64,
    /// Accepted moves.
    pub iterations: usize,
    /// Full path-delay evaluations performed (the CPU-cost driver).
    pub evaluations: usize,
}

/// Greedily minimize the path delay (the baseline for Fig. 2's `Tmin`).
///
/// Accepts the move with the best absolute delay gain each iteration and
/// stops when no upsizing improves the delay.
pub fn greedy_min_delay(lib: &Library, path: &TimedPath, options: &GreedyOptions) -> GreedyResult {
    let cref = lib.min_drive_ff();
    let cmax = cref * options.max_size_factor;
    let mut sizes = path.min_sizes(lib);
    let mut delay = path.delay(lib, &sizes).total_ps;
    let mut evaluations = 1usize;
    let mut iterations = 0usize;

    while iterations < options.max_iterations {
        let mut best: Option<(usize, f64, f64)> = None; // (stage, new delay, new size)
        for i in 1..path.len() {
            let trial_size = (sizes[i] * options.step).min(cmax);
            if trial_size <= sizes[i] {
                continue;
            }
            let old = sizes[i];
            sizes[i] = trial_size;
            let d = path.delay(lib, &sizes).total_ps;
            evaluations += 1;
            sizes[i] = old;
            if d < delay && best.map(|(_, bd, _)| d < bd).unwrap_or(true) {
                best = Some((i, d, trial_size));
            }
        }
        match best {
            Some((i, d, s)) => {
                sizes[i] = s;
                delay = d;
                iterations += 1;
            }
            None => break,
        }
    }

    GreedyResult {
        total_cin_ff: sizes.iter().sum(),
        delay_ps: delay,
        sizes,
        iterations,
        evaluations,
    }
}

/// Greedily size until `tc_ps` is met, choosing each move by the best
/// delay-gain/area-cost ratio (the TILOS criterion), then optionally
/// recover area by shrinking gates whose size the constraint does not
/// actually need.
///
/// # Errors
///
/// [`OptimizeError::Infeasible`] if the budget is exhausted or no move
/// improves the delay before `tc_ps` is reached.
pub fn greedy_size_for_constraint(
    lib: &Library,
    path: &TimedPath,
    tc_ps: f64,
    options: &GreedyOptions,
) -> Result<GreedyResult, OptimizeError> {
    let cref = lib.min_drive_ff();
    let cmax = cref * options.max_size_factor;
    let mut sizes = path.min_sizes(lib);
    let mut delay = path.delay(lib, &sizes).total_ps;
    let mut evaluations = 1usize;
    let mut iterations = 0usize;

    while delay > tc_ps {
        if iterations >= options.max_iterations {
            return Err(OptimizeError::NoConvergence {
                solver: "greedy_size_for_constraint",
                iterations,
            });
        }
        let mut best: Option<(usize, f64, f64, f64)> = None; // stage, ratio, delay, size
        for i in 1..path.len() {
            let trial_size = (sizes[i] * options.step).min(cmax);
            if trial_size <= sizes[i] {
                continue;
            }
            let old = sizes[i];
            sizes[i] = trial_size;
            let d = path.delay(lib, &sizes).total_ps;
            evaluations += 1;
            sizes[i] = old;
            let gain = delay - d;
            let cost = trial_size - old;
            if gain > 0.0 {
                let ratio = gain / cost;
                if best.map(|(_, r, _, _)| ratio > r).unwrap_or(true) {
                    best = Some((i, ratio, d, trial_size));
                }
            }
        }
        match best {
            Some((i, _, d, s)) => {
                sizes[i] = s;
                delay = d;
                iterations += 1;
            }
            None => {
                return Err(OptimizeError::Infeasible {
                    tc_ps,
                    tmin_ps: delay,
                });
            }
        }
    }

    if options.area_recovery {
        // Shrink pass: walk gates from the biggest down, undoing size that
        // the constraint does not need.
        let mut changed = true;
        while changed {
            changed = false;
            for i in 1..path.len() {
                loop {
                    let trial = (sizes[i] / options.step).max(cref);
                    if trial >= sizes[i] {
                        break;
                    }
                    let old = sizes[i];
                    sizes[i] = trial;
                    let d = path.delay(lib, &sizes).total_ps;
                    evaluations += 1;
                    if d <= tc_ps {
                        delay = d;
                        changed = true;
                    } else {
                        sizes[i] = old;
                        break;
                    }
                }
            }
        }
    }

    Ok(GreedyResult {
        total_cin_ff: sizes.iter().sum(),
        delay_ps: delay,
        sizes,
        iterations,
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_core::bounds::delay_bounds;
    use pops_core::sensitivity::distribute_constraint;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn path() -> TimedPath {
        use CellKind::*;
        TimedPath::new(
            vec![
                PathStage::new(Inv),
                PathStage::new(Nand2),
                PathStage::with_load(Nor2, 12.0),
                PathStage::new(Inv),
                PathStage::new(Nand3),
                PathStage::new(Inv),
            ],
            2.7,
            140.0,
        )
    }

    #[test]
    fn greedy_min_delay_improves_on_min_sizing() {
        let lib = lib();
        let p = path();
        let start = p.delay(&lib, &p.min_sizes(&lib)).total_ps;
        let r = greedy_min_delay(&lib, &p, &GreedyOptions::default());
        assert!(r.delay_ps < start);
    }

    #[test]
    fn pops_tmin_beats_or_matches_greedy() {
        // Fig. 2's claim: the deterministic bound is at or below the
        // iterative tool's best.
        let lib = lib();
        let p = path();
        let greedy = greedy_min_delay(&lib, &p, &GreedyOptions::default());
        let pops = delay_bounds(&lib, &p);
        assert!(
            pops.tmin_ps <= greedy.delay_ps * 1.005,
            "pops {} vs greedy {}",
            pops.tmin_ps,
            greedy.delay_ps
        );
    }

    #[test]
    fn constraint_is_met() {
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let tc = 1.3 * b.tmin_ps;
        let r = greedy_size_for_constraint(&lib, &p, tc, &GreedyOptions::default()).unwrap();
        assert!(r.delay_ps <= tc);
    }

    #[test]
    fn pops_area_beats_or_matches_greedy_area() {
        // Fig. 4's claim: under a hard constraint, the constant
        // sensitivity distribution needs less (or equal) area.
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let tc = 1.2 * b.tmin_ps;
        let greedy = greedy_size_for_constraint(&lib, &p, tc, &GreedyOptions::default()).unwrap();
        let pops = distribute_constraint(&lib, &p, tc).unwrap();
        assert!(
            pops.total_cin_ff <= greedy.total_cin_ff * 1.02,
            "pops {} vs greedy {}",
            pops.total_cin_ff,
            greedy.total_cin_ff
        );
    }

    #[test]
    fn greedy_uses_many_more_evaluations_than_path_length() {
        // The Table 1 cost driver: evaluation count blows up.
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let r = greedy_size_for_constraint(&lib, &p, 1.2 * b.tmin_ps, &GreedyOptions::default())
            .unwrap();
        assert!(r.evaluations > 10 * p.len());
    }

    #[test]
    fn infeasible_constraint_is_detected() {
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let err = greedy_size_for_constraint(&lib, &p, 0.5 * b.tmin_ps, &GreedyOptions::default())
            .unwrap_err();
        assert!(matches!(err, OptimizeError::Infeasible { .. }));
    }

    #[test]
    fn area_recovery_reduces_area() {
        let lib = lib();
        let p = path();
        let b = delay_bounds(&lib, &p);
        let tc = 1.4 * b.tmin_ps;
        let with = greedy_size_for_constraint(&lib, &p, tc, &GreedyOptions::default()).unwrap();
        let without = greedy_size_for_constraint(
            &lib,
            &p,
            tc,
            &GreedyOptions {
                area_recovery: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(with.total_cin_ff <= without.total_cin_ff);
    }
}
