//! Transistor-level transient simulation — the workspace's stand-in for
//! the HSPICE validation runs of the paper.
//!
//! The paper validates its closed-form model (and the Table 2 `Flimit`
//! values) against SPICE. The original foundry deck is proprietary, so
//! this crate implements the minimal electrical machinery that exercises
//! the same code paths:
//!
//! * [`mosfet`] — Sakurai–Newton alpha-power-law MOSFET I–V curves,
//! * [`stage`] — reduction of a switching CMOS gate (non-controlling side
//!   inputs) to an equivalent pull-up/pull-down stage,
//! * [`transient`] — RK4 integration of the output-node ODE including the
//!   input-to-output Miller coupling, plus waveform measurements
//!   (50 % delay, 20–80 % transition),
//! * [`path_sim`] — stage-by-stage simulation of a sized
//!   [`pops_delay::TimedPath`], each stage driven by the previous stage's
//!   simulated waveform.
//!
//! # Example
//!
//! ```
//! use pops_delay::Library;
//! use pops_netlist::CellKind;
//! use pops_spice::{path_sim::simulate_path, ElectricalParams};
//! use pops_delay::{PathStage, TimedPath};
//!
//! let lib = Library::cmos025();
//! let params = ElectricalParams::cmos025();
//! let path = TimedPath::new(
//!     vec![PathStage::new(CellKind::Inv); 3],
//!     lib.min_drive_ff(),
//!     20.0,
//! );
//! let sizes = path.min_sizes(&lib);
//! let result = simulate_path(&params, &lib, &path, &sizes);
//! assert!(result.total_delay_ps > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mosfet;
pub mod path_sim;
pub mod stage;
pub mod transient;

pub use mosfet::{ElectricalParams, MosfetKind};
pub use stage::EquivalentStage;
pub use transient::{simulate_stage, Waveform};
