//! Sakurai–Newton alpha-power-law MOSFET model.
//!
//! The alpha-power law captures velocity saturation in short-channel
//! devices with three parameters per polarity: threshold `V_T`, the
//! velocity-saturation index `α` (2 = long-channel square law, →1 = fully
//! velocity saturated) and the drive factor `β` (µA per µm of width at
//! 1 V of overdrive).

/// Device polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosfetKind {
    /// N-channel.
    Nmos,
    /// P-channel.
    Pmos,
}

/// Electrical parameters of the simulated process (0.25 µm class).
///
/// Consistent with [`pops_delay::Process::cmos025`]: same supply, same
/// thresholds, and an N/P drive ratio near the `R = 2.4` the closed-form
/// model uses.
#[derive(Debug, Clone, PartialEq)]
pub struct ElectricalParams {
    /// Supply voltage (V).
    pub vdd: f64,
    /// NMOS threshold (V).
    pub vtn: f64,
    /// PMOS threshold magnitude (V).
    pub vtp: f64,
    /// Velocity-saturation index for NMOS.
    pub alpha_n: f64,
    /// Velocity-saturation index for PMOS.
    pub alpha_p: f64,
    /// NMOS drive factor (µA/µm at 1 V overdrive).
    pub beta_n: f64,
    /// PMOS drive factor (µA/µm at 1 V overdrive).
    pub beta_p: f64,
    /// Saturation-voltage factor: `V_DSAT = k_sat · (V_GS − V_T)^(α/2)`.
    pub k_sat: f64,
    /// Gate capacitance per µm of width (fF/µm).
    pub cg_per_um: f64,
}

impl ElectricalParams {
    /// Generic 0.25 µm parameters.
    ///
    /// Drive sanity: an NMOS at full gate drive (`V_GS = 2.5` V) delivers
    /// `β_n · 2.0^1.3 ≈ 550` µA/µm — typical for the node.
    pub fn cmos025() -> Self {
        ElectricalParams {
            vdd: 2.5,
            vtn: 0.50,
            vtp: 0.55,
            alpha_n: 1.30,
            alpha_p: 1.45,
            beta_n: 224.0,
            beta_p: 88.0,
            k_sat: 0.7,
            cg_per_um: 1.8,
        }
    }

    /// Threshold voltage for a device kind (V, magnitude).
    pub fn vt(&self, kind: MosfetKind) -> f64 {
        match kind {
            MosfetKind::Nmos => self.vtn,
            MosfetKind::Pmos => self.vtp,
        }
    }

    /// Drain current (µA) of a device of `width_um` at gate-source
    /// overdrive `vgs` and drain-source voltage `vds` (both magnitudes,
    /// ≥ 0; PMOS quantities are mirrored by the caller).
    ///
    /// Implements the Sakurai–Newton model:
    ///
    /// * cutoff: `vgs ≤ V_T → 0`;
    /// * saturation (`vds ≥ V_DSAT`): `β·W·(vgs − V_T)^α`;
    /// * triode: parabolic interpolation
    ///   `I_sat · (2 − vds/V_DSAT) · (vds/V_DSAT)`.
    pub fn drain_current(&self, kind: MosfetKind, width_um: f64, vgs: f64, vds: f64) -> f64 {
        let vt = self.vt(kind);
        if vgs <= vt || vds <= 0.0 {
            return 0.0;
        }
        let (alpha, beta) = match kind {
            MosfetKind::Nmos => (self.alpha_n, self.beta_n),
            MosfetKind::Pmos => (self.alpha_p, self.beta_p),
        };
        let ov = vgs - vt;
        let i_sat = beta * width_um * ov.powf(alpha);
        let v_dsat = self.k_sat * ov.powf(alpha / 2.0);
        if vds >= v_dsat {
            i_sat
        } else {
            let x = vds / v_dsat;
            i_sat * (2.0 - x) * x
        }
    }
}

impl Default for ElectricalParams {
    fn default() -> Self {
        ElectricalParams::cmos025()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> ElectricalParams {
        ElectricalParams::cmos025()
    }

    #[test]
    fn cutoff_region_conducts_nothing() {
        let p = p();
        assert_eq!(p.drain_current(MosfetKind::Nmos, 1.0, 0.3, 1.0), 0.0);
        assert_eq!(p.drain_current(MosfetKind::Pmos, 1.0, 0.5, 1.0), 0.0);
        assert_eq!(p.drain_current(MosfetKind::Nmos, 1.0, 1.0, 0.0), 0.0);
    }

    #[test]
    fn saturation_current_scales_with_width() {
        let p = p();
        let i1 = p.drain_current(MosfetKind::Nmos, 1.0, 2.5, 2.5);
        let i3 = p.drain_current(MosfetKind::Nmos, 3.0, 2.5, 2.5);
        assert!((i3 - 3.0 * i1).abs() < 1e-9);
    }

    #[test]
    fn full_drive_current_is_realistic() {
        let p = p();
        let i = p.drain_current(MosfetKind::Nmos, 1.0, 2.5, 2.5);
        assert!((400.0..700.0).contains(&i), "NMOS {i} µA/µm");
        let ip = p.drain_current(MosfetKind::Pmos, 1.0, 2.5, 2.5);
        assert!((150.0..320.0).contains(&ip), "PMOS {ip} µA/µm");
    }

    #[test]
    fn n_over_p_ratio_matches_closed_form_r() {
        let p = p();
        let r = p.drain_current(MosfetKind::Nmos, 1.0, 2.5, 2.5)
            / p.drain_current(MosfetKind::Pmos, 1.0, 2.5, 2.5);
        assert!((r - 2.4).abs() < 0.4, "R = {r}");
    }

    #[test]
    fn triode_current_is_continuous_at_vdsat() {
        let p = p();
        let ov: f64 = 1.5;
        let v_dsat = p.k_sat * ov.powf(p.alpha_n / 2.0);
        let just_below = p.drain_current(MosfetKind::Nmos, 1.0, ov + p.vtn, v_dsat - 1e-9);
        let just_above = p.drain_current(MosfetKind::Nmos, 1.0, ov + p.vtn, v_dsat + 1e-9);
        assert!((just_below - just_above).abs() < 1e-3);
    }

    #[test]
    fn triode_current_increases_with_vds() {
        let p = p();
        let mut last = 0.0;
        for vds in [0.05, 0.1, 0.2, 0.4] {
            let i = p.drain_current(MosfetKind::Nmos, 1.0, 2.5, vds);
            assert!(i > last);
            last = i;
        }
    }

    #[test]
    fn current_is_monotone_in_gate_drive() {
        let p = p();
        let mut last = 0.0;
        for vgs in [0.8, 1.2, 1.6, 2.0, 2.5] {
            let i = p.drain_current(MosfetKind::Nmos, 1.0, vgs, 2.5);
            assert!(i > last);
            last = i;
        }
    }
}
