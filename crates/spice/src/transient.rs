//! Transient integration of a stage output node and waveform measurement.
//!
//! The output node obeys
//!
//! ```text
//! (C_node + C_M) · dV_out/dt = I_up(V_in, V_out) − I_down(V_in, V_out)
//!                              + C_M · dV_in/dt
//! ```
//!
//! where `C_node` is the stage parasitic plus external load and `C_M` the
//! input-to-output coupling (the same Miller capacitance eq. (1) models
//! analytically). Integration is classical RK4 at a fixed step tied to the
//! waveform sampling.

use crate::mosfet::ElectricalParams;
use crate::stage::EquivalentStage;

/// Unit conversion: `dV/dt [V/ps] = I[µA] / C[fF] · 1e-3`.
const UA_PER_FF_TO_V_PER_PS: f64 = 1e-3;

/// A uniformly sampled voltage waveform.
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    /// Time of the first sample (ps).
    pub t0_ps: f64,
    /// Sampling step (ps).
    pub dt_ps: f64,
    /// Voltage samples (V).
    pub samples: Vec<f64>,
}

impl Waveform {
    /// A linear ramp from `v_from` to `v_to` lasting `tau_ps`, preceded by
    /// a short hold at `v_from` and followed by a hold at `v_to`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_ps <= 0` or `tau_ps < 0`.
    pub fn ramp(t0_ps: f64, tau_ps: f64, v_from: f64, v_to: f64, dt_ps: f64) -> Waveform {
        assert!(dt_ps > 0.0, "sampling step must be positive");
        assert!(tau_ps >= 0.0, "transition time must be non-negative");
        let hold = (5.0 * dt_ps).max(1.0);
        let total = hold + tau_ps + hold;
        let n = (total / dt_ps).ceil() as usize + 1;
        let samples = (0..n)
            .map(|i| {
                let t = i as f64 * dt_ps;
                if t <= hold || tau_ps == 0.0 {
                    if t <= hold {
                        v_from
                    } else {
                        v_to
                    }
                } else if t >= hold + tau_ps {
                    v_to
                } else {
                    v_from + (v_to - v_from) * (t - hold) / tau_ps
                }
            })
            .collect();
        Waveform {
            t0_ps,
            dt_ps,
            samples,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the waveform holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time of the last sample (ps).
    pub fn end_time_ps(&self) -> f64 {
        self.t0_ps + self.dt_ps * (self.samples.len().saturating_sub(1)) as f64
    }

    /// Interpolated value at time `t` (clamped to the end values).
    pub fn value_at(&self, t_ps: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let x = (t_ps - self.t0_ps) / self.dt_ps;
        if x <= 0.0 {
            return self.samples[0];
        }
        let i = x.floor() as usize;
        if i + 1 >= self.samples.len() {
            return *self.samples.last().expect("non-empty");
        }
        let frac = x - i as f64;
        self.samples[i] * (1.0 - frac) + self.samples[i + 1] * frac
    }

    /// Slope (V/ps) at time `t` by sample differencing.
    pub fn slope_at(&self, t_ps: f64) -> f64 {
        let h = self.dt_ps;
        (self.value_at(t_ps + 0.5 * h) - self.value_at(t_ps - 0.5 * h)) / h
    }

    /// First time the waveform crosses `level` in the given direction.
    pub fn crossing_time(&self, level: f64, rising: bool) -> Option<f64> {
        for i in 1..self.samples.len() {
            let (a, b) = (self.samples[i - 1], self.samples[i]);
            let crossed = if rising {
                a < level && b >= level
            } else {
                a > level && b <= level
            };
            if crossed {
                let frac = (level - a) / (b - a);
                return Some(self.t0_ps + (i as f64 - 1.0 + frac) * self.dt_ps);
            }
        }
        None
    }

    /// 20–80 % transition time extrapolated to the full swing
    /// (`Δt(20→80) / 0.6`), the standard SPICE measurement.
    pub fn transition_ps(&self, vdd: f64) -> Option<f64> {
        let first = self.samples.first()?;
        let rising = self.samples.last()? > first;
        let (lo, hi) = (0.2 * vdd, 0.8 * vdd);
        let (t_lo, t_hi) = if rising {
            (self.crossing_time(lo, true)?, self.crossing_time(hi, true)?)
        } else {
            (
                self.crossing_time(hi, false)?,
                self.crossing_time(lo, false)?,
            )
        };
        Some((t_hi - t_lo) / 0.6)
    }

    /// The last sample value.
    pub fn final_value(&self) -> f64 {
        self.samples.last().copied().unwrap_or(0.0)
    }

    /// Mirror the waveform around `vdd/2` (polarity restoration for
    /// behaviorally non-inverting cells).
    pub fn mirrored(&self, vdd: f64) -> Waveform {
        Waveform {
            t0_ps: self.t0_ps,
            dt_ps: self.dt_ps,
            samples: self.samples.iter().map(|&v| vdd - v).collect(),
        }
    }
}

/// Maximum number of integration steps before declaring non-settlement.
const MAX_STEPS: usize = 400_000;

/// Integrate the output waveform of `stage` driven by `vin` into an
/// external load of `c_load_ext_ff` (the stage's own parasitic is added
/// internally).
///
/// The initial output state is the DC solution for the initial input
/// value. Integration continues past the end of the input until the
/// output settles within 0.1 % of a rail (or [`MAX_STEPS`] elapse).
///
/// # Example
///
/// ```
/// use pops_delay::Library;
/// use pops_netlist::CellKind;
/// use pops_spice::{simulate_stage, ElectricalParams, EquivalentStage, Waveform};
///
/// let params = ElectricalParams::cmos025();
/// let lib = Library::cmos025();
/// let stage = EquivalentStage::from_cell(&params, &lib, CellKind::Inv, 5.0);
/// let vin = Waveform::ramp(0.0, 40.0, 0.0, params.vdd, 0.1);
/// let vout = simulate_stage(&params, &stage, 10.0, &vin);
/// // Rising input, inverting stage: output ends low.
/// assert!(vout.final_value() < 0.1 * params.vdd);
/// ```
pub fn simulate_stage(
    params: &ElectricalParams,
    stage: &EquivalentStage,
    c_load_ext_ff: f64,
    vin: &Waveform,
) -> Waveform {
    assert!(c_load_ext_ff >= 0.0, "load must be non-negative");
    assert!(!vin.is_empty(), "input waveform must not be empty");
    let vdd = params.vdd;
    let dt = vin.dt_ps;
    let c_node = stage.cpar_ff + c_load_ext_ff;
    let c_total = c_node + stage.miller_ff;

    // DC initial condition from the initial input level (inverting stage
    // orientation; non-inverting polarity is restored by the caller).
    let vin0 = vin.samples[0];
    let mut vout = if vin0 < 0.5 * vdd { vdd } else { 0.0 };

    // dV/dt = (I[µA]·1e-3 + C_M·dVin/dt) / (C_node + C_M)  [V/ps]
    let f = |t: f64, v: f64| -> f64 {
        let vi = vin.value_at(t);
        let i = stage.output_current(params, vi, v.clamp(0.0, vdd));
        (i * UA_PER_FF_TO_V_PER_PS + stage.miller_ff * vin.slope_at(t)) / c_total
    };

    let mut t = vin.t0_ps;
    let mut samples = vec![vout];
    let settle_band = 0.001 * vdd;
    for step in 0..MAX_STEPS {
        // Classical RK4.
        let k1 = f(t, vout);
        let k2 = f(t + 0.5 * dt, vout + 0.5 * dt * k1);
        let k3 = f(t + 0.5 * dt, vout + 0.5 * dt * k2);
        let k4 = f(t + dt, vout + dt * k3);
        vout += dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4);
        vout = vout.clamp(-0.1 * vdd, 1.1 * vdd);
        t += dt;
        samples.push(vout);

        let input_done = t >= vin.end_time_ps();
        let near_rail = vout < settle_band || vout > vdd - settle_band;
        // A node can sit *past* a rail transiently (Miller kickback) while
        // still being driven: require the derivative to vanish too.
        let quiescent = f(t, vout).abs() < 1e-7;
        if input_done && near_rail && quiescent {
            break;
        }
        if step + 1 == MAX_STEPS {
            // Return what we have; measurements will report None and
            // callers surface the issue.
            break;
        }
    }

    Waveform {
        t0_ps: vin.t0_ps,
        dt_ps: dt,
        samples,
    }
}

/// 50 %-to-50 % propagation delay between two waveforms (ps).
///
/// Directions are inferred from each waveform's endpoints.
pub fn propagation_delay_ps(vin: &Waveform, vout: &Waveform, vdd: f64) -> Option<f64> {
    let in_rising = vin.final_value() > *vin.samples.first()?;
    let out_rising = vout.final_value() > *vout.samples.first()?;
    let t_in = vin.crossing_time(0.5 * vdd, in_rising)?;
    let t_out = vout.crossing_time(0.5 * vdd, out_rising)?;
    Some(t_out - t_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_delay::Library;
    use pops_netlist::CellKind;

    fn setup() -> (ElectricalParams, Library) {
        (ElectricalParams::cmos025(), Library::cmos025())
    }

    fn inv_stage(cin: f64) -> (ElectricalParams, EquivalentStage) {
        let (p, lib) = setup();
        let s = EquivalentStage::from_cell(&p, &lib, CellKind::Inv, cin);
        (p, s)
    }

    #[test]
    fn ramp_shape() {
        let w = Waveform::ramp(0.0, 100.0, 0.0, 2.5, 0.5);
        assert_eq!(w.samples[0], 0.0);
        assert_eq!(w.final_value(), 2.5);
        let t50 = w.crossing_time(1.25, true).unwrap();
        // Mid-swing is reached halfway through the ramp (after the hold).
        let hold = (5.0 * 0.5f64).max(1.0);
        assert!((t50 - (hold + 50.0)).abs() < 1.0, "t50 = {t50}");
    }

    #[test]
    fn inverter_discharges_on_rising_input() {
        let (p, s) = inv_stage(5.0);
        let vin = Waveform::ramp(0.0, 50.0, 0.0, p.vdd, 0.1);
        let vout = simulate_stage(&p, &s, 10.0, &vin);
        assert!(vout.samples[0] > 0.99 * p.vdd);
        assert!(vout.final_value() < 0.01 * p.vdd);
    }

    #[test]
    fn inverter_charges_on_falling_input() {
        let (p, s) = inv_stage(5.0);
        let vin = Waveform::ramp(0.0, 50.0, p.vdd, 0.0, 0.1);
        let vout = simulate_stage(&p, &s, 10.0, &vin);
        assert!(vout.samples[0] < 0.01 * p.vdd);
        assert!(vout.final_value() > 0.99 * p.vdd);
    }

    #[test]
    fn heavier_load_slows_the_stage() {
        let (p, s) = inv_stage(5.0);
        let vin = Waveform::ramp(0.0, 40.0, 0.0, p.vdd, 0.1);
        let d = |cl: f64| {
            let vout = simulate_stage(&p, &s, cl, &vin);
            propagation_delay_ps(&vin, &vout, p.vdd).unwrap()
        };
        assert!(d(40.0) > d(10.0));
        assert!(d(160.0) > d(40.0));
    }

    #[test]
    fn bigger_stage_drives_faster() {
        let (p, lib) = setup();
        let vin = Waveform::ramp(0.0, 40.0, 0.0, p.vdd, 0.1);
        let d = |cin: f64| {
            let s = EquivalentStage::from_cell(&p, &lib, CellKind::Inv, cin);
            let vout = simulate_stage(&p, &s, 60.0, &vin);
            propagation_delay_ps(&vin, &vout, p.vdd).unwrap()
        };
        assert!(d(10.0) < d(3.0));
    }

    #[test]
    fn transition_measurement_scales_with_load() {
        let (p, s) = inv_stage(5.0);
        let vin = Waveform::ramp(0.0, 40.0, 0.0, p.vdd, 0.1);
        let tr = |cl: f64| {
            simulate_stage(&p, &s, cl, &vin)
                .transition_ps(p.vdd)
                .unwrap()
        };
        let t1 = tr(10.0);
        let t4 = tr(40.0);
        assert!(t4 > 2.0 * t1, "transition {t1} -> {t4}");
    }

    #[test]
    fn mirrored_waveform_flips_rails() {
        let w = Waveform::ramp(0.0, 10.0, 0.0, 2.5, 0.5);
        let m = w.mirrored(2.5);
        assert!((m.samples[0] - 2.5).abs() < 1e-12);
        assert!(m.final_value().abs() < 1e-12);
    }

    #[test]
    fn nor3_slower_than_inverter_rising() {
        // The Table 2 physics: a NOR3 producing a rising output through
        // three series PMOS is far slower than an inverter at equal size.
        let (p, lib) = setup();
        let vin = Waveform::ramp(0.0, 40.0, p.vdd, 0.0, 0.1); // falling input
        let d = |cell: CellKind| {
            let s = EquivalentStage::from_cell(&p, &lib, cell, 6.0);
            let vout = simulate_stage(&p, &s, 30.0, &vin);
            propagation_delay_ps(&vin, &vout, p.vdd).unwrap()
        };
        assert!(d(CellKind::Nor3) > 1.5 * d(CellKind::Inv));
    }

    #[test]
    fn value_interpolation_is_linear() {
        let w = Waveform {
            t0_ps: 0.0,
            dt_ps: 1.0,
            samples: vec![0.0, 1.0, 2.0],
        };
        assert!((w.value_at(0.5) - 0.5).abs() < 1e-12);
        assert!((w.value_at(1.75) - 1.75).abs() < 1e-12);
        assert_eq!(w.value_at(-1.0), 0.0);
        assert_eq!(w.value_at(9.0), 2.0);
    }
}
