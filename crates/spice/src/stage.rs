//! Reduction of a switching CMOS gate to an equivalent inverter stage.
//!
//! For path timing, exactly one input of a gate switches while the side
//! inputs sit at their non-controlling values (the standard SPICE
//! characterization setup, and the situation Table 2 of the paper
//! measures). Under that condition:
//!
//! * a NAND's pull-down is its full series N stack (weakened by the stack
//!   factor) and its pull-up is the single switching P device;
//! * a NOR's pull-up is its series P stack and its pull-down the single
//!   switching N device;
//! * compound AND/OR cells behave like their first inverting stage
//!   followed by an inverter — approximated here by a single equivalent
//!   stage with the composite stack factors (the closed-form model makes
//!   the same approximation through its `DW` weights).

use pops_delay::{CellTiming, Library};
use pops_netlist::CellKind;

use crate::mosfet::{ElectricalParams, MosfetKind};

/// A gate collapsed to one pull-up and one pull-down equivalent device.
#[derive(Debug, Clone, PartialEq)]
pub struct EquivalentStage {
    /// Cell this stage was derived from.
    pub cell: CellKind,
    /// Equivalent NMOS width (µm) of the pull-down path.
    pub wn_eq_um: f64,
    /// Equivalent PMOS width (µm) of the pull-up path.
    pub wp_eq_um: f64,
    /// Input-to-output coupling capacitance (fF).
    pub miller_ff: f64,
    /// Output parasitic (drain) capacitance of the cell itself (fF).
    pub cpar_ff: f64,
    /// Whether the stage logically inverts its switching input.
    pub inverting: bool,
}

impl EquivalentStage {
    /// Build the equivalent stage of `cell` sized to input capacitance
    /// `cin_ff`.
    ///
    /// Width budget: the input pin capacitance is `c_g · (W_N + W_P)` with
    /// `W_P = k · W_N`, using the library's per-cell configuration ratio
    /// `k`. Stack factors divide the switching path width: they reuse the
    /// library's logical weights so the simulator and the closed-form
    /// model describe the *same* physical gate.
    pub fn from_cell(
        params: &ElectricalParams,
        lib: &Library,
        cell: CellKind,
        cin_ff: f64,
    ) -> EquivalentStage {
        assert!(cin_ff > 0.0, "input capacitance must be positive");
        let t: &CellTiming = lib.cell(cell);
        let wn = cin_ff / (params.cg_per_um * (1.0 + t.k));
        let wp = t.k * wn;
        // Series stacks divide the available current by the logical
        // weight; the equivalent device is the stack collapsed to one
        // transistor of reduced width.
        let wn_eq = wn / t.dw_hl;
        let wp_eq = wp / t.dw_lh;
        // Miller coupling: average of the two edge couplings (the ODE uses
        // a single C_M for both directions; the asymmetry is second-order).
        let miller = 0.25 * cin_ff;
        let cpar = t.cpar_ff(cin_ff);
        EquivalentStage {
            cell,
            wn_eq_um: wn_eq,
            wp_eq_um: wp_eq,
            miller_ff: miller,
            cpar_ff: cpar,
            inverting: cell.is_inverting(),
        }
    }

    /// Pull-down current (µA) for input voltage `vin` and output voltage
    /// `vout` (inverting stage orientation: N conducts when the input is
    /// high).
    pub fn pulldown_current(&self, params: &ElectricalParams, vin: f64, vout: f64) -> f64 {
        params.drain_current(MosfetKind::Nmos, self.wn_eq_um, vin, vout)
    }

    /// Pull-up current (µA): P conducts when the input is low.
    pub fn pullup_current(&self, params: &ElectricalParams, vin: f64, vout: f64) -> f64 {
        params.drain_current(
            MosfetKind::Pmos,
            self.wp_eq_um,
            params.vdd - vin,
            params.vdd - vout,
        )
    }

    /// Net current charging the output node (µA), positive = charging.
    pub fn output_current(&self, params: &ElectricalParams, vin: f64, vout: f64) -> f64 {
        self.pullup_current(params, vin, vout) - self.pulldown_current(params, vin, vout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (ElectricalParams, Library) {
        (ElectricalParams::cmos025(), Library::cmos025())
    }

    #[test]
    fn width_budget_matches_cin() {
        let (p, lib) = setup();
        let cin = 5.4;
        let s = EquivalentStage::from_cell(&p, &lib, CellKind::Inv, cin);
        let t = lib.cell(CellKind::Inv);
        // For the inverter the stack factors are 1, so widths recompose.
        let recomposed = p.cg_per_um * (s.wn_eq_um + s.wp_eq_um);
        assert!((recomposed - cin).abs() < 1e-9);
        assert!((s.wp_eq_um / s.wn_eq_um - t.k).abs() < 1e-9);
    }

    #[test]
    fn nand_pulldown_is_stack_weakened() {
        let (p, lib) = setup();
        let inv = EquivalentStage::from_cell(&p, &lib, CellKind::Inv, 6.0);
        let nand = EquivalentStage::from_cell(&p, &lib, CellKind::Nand3, 6.0);
        // Same input capacitance, but the NAND3's pull-down must be much
        // weaker than the inverter's.
        let i_inv = inv.pulldown_current(&p, 2.5, 1.25);
        let i_nand = nand.pulldown_current(&p, 2.5, 1.25);
        assert!(i_nand < 0.6 * i_inv, "{i_nand} vs {i_inv}");
    }

    #[test]
    fn nor_pullup_is_weakest() {
        let (p, lib) = setup();
        let cells = [CellKind::Inv, CellKind::Nand3, CellKind::Nor3];
        let pullups: Vec<f64> = cells
            .iter()
            .map(|&c| EquivalentStage::from_cell(&p, &lib, c, 6.0).pullup_current(&p, 0.0, 1.25))
            .collect();
        // NOR3 stacks P devices: weakest pull-up of the three.
        assert!(pullups[2] < pullups[1]);
        assert!(pullups[2] < pullups[0]);
    }

    #[test]
    fn output_current_sign_follows_input() {
        let (p, lib) = setup();
        let s = EquivalentStage::from_cell(&p, &lib, CellKind::Inv, 5.0);
        // Input high → discharging (negative), input low → charging.
        assert!(s.output_current(&p, 2.5, 1.25) < 0.0);
        assert!(s.output_current(&p, 0.0, 1.25) > 0.0);
    }

    #[test]
    fn equilibrium_at_rails() {
        let (p, lib) = setup();
        let s = EquivalentStage::from_cell(&p, &lib, CellKind::Inv, 5.0);
        // Input high, output already at ground: nothing flows.
        assert_eq!(s.output_current(&p, 2.5, 0.0), 0.0);
        // Input low, output at VDD: nothing flows.
        assert_eq!(s.output_current(&p, 0.0, 2.5), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cin_rejected() {
        let (p, lib) = setup();
        let _ = EquivalentStage::from_cell(&p, &lib, CellKind::Inv, 0.0);
    }
}
