//! Full-path transient simulation.
//!
//! Mirrors the paper's validation methodology: "The delay values are
//! obtained from SPICE simulations of the corresponding path
//! implementations" (§3.1). Each stage is integrated with the *actual*
//! waveform produced by its predecessor, so slope effects propagate
//! exactly as they would in SPICE.

use pops_delay::{Library, TimedPath};

use crate::mosfet::ElectricalParams;
use crate::stage::EquivalentStage;
use crate::transient::{propagation_delay_ps, simulate_stage, Waveform};

/// Result of simulating a sized path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathSimResult {
    /// 50 %-to-50 % delay from path input to path output (ps).
    pub total_delay_ps: f64,
    /// Per-stage 50 %-to-50 % delays (ps).
    pub stage_delays_ps: Vec<f64>,
    /// Waveform at the path output.
    pub final_waveform: Waveform,
}

/// Integration step used for path simulation (ps).
const DT_PS: f64 = 0.1;

/// Simulate a sized [`TimedPath`] stage by stage.
///
/// Boundary conditions match the closed-form evaluation: the input is a
/// ramp of the path's input transition time, stage `i` drives its
/// off-path load plus stage `i+1`'s input capacitance, and the last stage
/// drives the terminal load.
///
/// Behaviorally non-inverting cells (BUF/AND/OR/XOR) are simulated as
/// their inverting first stage with ideal polarity restoration (waveform
/// mirroring) — the same single-stage abstraction the closed-form model
/// uses.
///
/// # Panics
///
/// Panics if `sizes.len() != path.len()` or a stage output never crosses
/// mid-rail (a non-functional sizing, e.g. zero-width devices).
///
/// # Example
///
/// ```
/// use pops_delay::{Library, PathStage, TimedPath};
/// use pops_netlist::CellKind;
/// use pops_spice::{path_sim::simulate_path, ElectricalParams};
///
/// let lib = Library::cmos025();
/// let path = TimedPath::new(
///     vec![PathStage::new(CellKind::Nand2), PathStage::new(CellKind::Inv)],
///     lib.min_drive_ff(),
///     15.0,
/// );
/// let sizes = path.min_sizes(&lib);
/// let r = simulate_path(&ElectricalParams::cmos025(), &lib, &path, &sizes);
/// assert_eq!(r.stage_delays_ps.len(), 2);
/// ```
pub fn simulate_path(
    params: &ElectricalParams,
    lib: &Library,
    path: &TimedPath,
    sizes: &[f64],
) -> PathSimResult {
    assert_eq!(sizes.len(), path.len(), "one size per stage");
    let vdd = params.vdd;

    let rising_input = matches!(path.input_edge(), pops_delay::Edge::Rising);
    let (v0, v1) = if rising_input { (0.0, vdd) } else { (vdd, 0.0) };
    let mut vin = Waveform::ramp(0.0, path.input_transition_ps(), v0, v1, DT_PS);

    let mut stage_delays = Vec::with_capacity(path.len());
    let mut total = 0.0;
    for (i, stage) in path.stages().iter().enumerate() {
        let eq = EquivalentStage::from_cell(params, lib, stage.cell, sizes[i]);
        let c_ext = path.stage_load_ff(i, sizes);
        let raw = simulate_stage(params, &eq, c_ext, &vin);
        let vout = if eq.inverting { raw } else { raw.mirrored(vdd) };
        let d = propagation_delay_ps(&vin, &vout, vdd)
            .unwrap_or_else(|| panic!("stage {i} output never crossed mid-rail"));
        stage_delays.push(d);
        total += d;
        vin = vout;
    }

    PathSimResult {
        total_delay_ps: total,
        stage_delays_ps: stage_delays,
        final_waveform: vin,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_delay::PathStage;
    use pops_netlist::CellKind;

    fn setup() -> (ElectricalParams, Library) {
        (ElectricalParams::cmos025(), Library::cmos025())
    }

    fn inv_path(n: usize, terminal: f64) -> TimedPath {
        TimedPath::new(
            vec![PathStage::new(CellKind::Inv); n],
            Library::cmos025().min_drive_ff(),
            terminal,
        )
    }

    #[test]
    fn path_delay_is_sum_of_stage_delays() {
        let (p, lib) = setup();
        let path = inv_path(4, 20.0);
        let sizes = path.min_sizes(&lib);
        let r = simulate_path(&p, &lib, &path, &sizes);
        let sum: f64 = r.stage_delays_ps.iter().sum();
        assert!((r.total_delay_ps - sum).abs() < 1e-9);
        assert!(r.total_delay_ps > 0.0);
    }

    #[test]
    fn longer_paths_take_longer() {
        let (p, lib) = setup();
        let d = |n: usize| {
            let path = inv_path(n, 20.0);
            let sizes = path.min_sizes(&lib);
            simulate_path(&p, &lib, &path, &sizes).total_delay_ps
        };
        assert!(d(6) > d(3));
    }

    #[test]
    fn tapered_sizing_beats_min_sizing_into_heavy_load() {
        let (p, lib) = setup();
        let path = inv_path(3, 300.0);
        let min = path.min_sizes(&lib);
        let d_min = simulate_path(&p, &lib, &path, &min).total_delay_ps;
        // Geometric taper toward the big load.
        let tapered = vec![min[0], min[0] * 4.0, min[0] * 16.0];
        let d_tapered = simulate_path(&p, &lib, &path, &tapered).total_delay_ps;
        assert!(
            d_tapered < d_min,
            "tapered {d_tapered} should beat min {d_min}"
        );
    }

    #[test]
    fn closed_form_model_tracks_simulation_shape() {
        // Model-vs-SPICE agreement (the paper's Fig. 2 claim): relative
        // delays of differently sized paths must rank identically and the
        // absolute values must agree within a loose band.
        let (p, lib) = setup();
        let path = inv_path(5, 100.0);
        let configs: Vec<Vec<f64>> = vec![
            path.min_sizes(&lib),
            vec![2.7, 5.0, 9.0, 16.0, 28.0],
            vec![2.7, 8.0, 8.0, 8.0, 8.0],
        ];
        let mut model: Vec<f64> = Vec::new();
        let mut sim: Vec<f64> = Vec::new();
        for sizes in &configs {
            model.push(path.delay(&lib, sizes).total_ps);
            sim.push(simulate_path(&p, &lib, &path, sizes).total_delay_ps);
        }
        // Same ranking.
        let mut model_rank: Vec<usize> = (0..3).collect();
        model_rank.sort_by(|&a, &b| model[a].total_cmp(&model[b]));
        let mut sim_rank: Vec<usize> = (0..3).collect();
        sim_rank.sort_by(|&a, &b| sim[a].total_cmp(&sim[b]));
        assert_eq!(model_rank, sim_rank);
        // Loose absolute agreement (the paper reports model accuracy vs
        // SPICE; we accept a 2x band for the reconstructed parameters).
        for (m, s) in model.iter().zip(&sim) {
            let ratio = m / s;
            assert!((0.5..2.0).contains(&ratio), "model {m} vs sim {s}");
        }
    }

    #[test]
    fn non_inverting_cells_preserve_polarity() {
        let (p, lib) = setup();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::And2),
                PathStage::new(CellKind::Buf),
            ],
            lib.min_drive_ff(),
            15.0,
        );
        let sizes = path.min_sizes(&lib);
        let r = simulate_path(&p, &lib, &path, &sizes);
        // Rising path input through two non-inverting stages: output high.
        assert!(r.final_waveform.final_value() > 0.9 * p.vdd);
    }

    #[test]
    fn mixed_gate_path_runs() {
        let (p, lib) = setup();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::with_load(CellKind::Nand3, 12.0),
                PathStage::new(CellKind::Nor2),
                PathStage::new(CellKind::Inv),
            ],
            lib.min_drive_ff(),
            25.0,
        );
        let sizes = path.min_sizes(&lib);
        let r = simulate_path(&p, &lib, &path, &sizes);
        assert_eq!(r.stage_delays_ps.len(), 4);
        assert!(r.total_delay_ps > 0.0);
    }
}
