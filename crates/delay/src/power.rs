//! Switching power estimation.
//!
//! The paper uses total transistor width `ΣW` as its area *and* power
//! metric ("minimum area/power cost"): in static CMOS the dynamic power
//! is `P = α·f·C_sw·V_DD²`, and the switched capacitance `C_sw` is
//! proportional to the implemented widths. This module makes that
//! relationship explicit so results can be reported in physical units
//! rather than only in µm of width.

use pops_netlist::cell::VtClass;

use crate::library::{Library, VtTiming};
use crate::path::TimedPath;
use crate::process::Process;

/// Baseline subthreshold leakage per µm of SVT transistor width (nW/µm),
/// representative of a 0.25 µm 2.5 V node at nominal temperature. The Vt
/// variant scales this by [`VtTiming::leakage_factor`] (leakage is
/// exponential in Vt, per arXiv 1307.3017).
pub const BASE_LEAKAGE_NW_PER_UM: f64 = 0.4;

/// Static (subthreshold) leakage of one gate instance (nW), keyed by its
/// Vt variant and implemented width.
///
/// Width is derived from the instance's input capacitance through the
/// process's `cg_per_um`, the same `ΣW` bookkeeping the area metric uses —
/// so leakage, like dynamic power, is proportional to the width the sizer
/// actually spends.
///
/// # Example
///
/// ```
/// use pops_delay::power::leakage_nw;
/// use pops_delay::Process;
/// use pops_netlist::cell::VtClass;
///
/// let p = Process::cmos025();
/// let svt = leakage_nw(&p, VtClass::Svt, 2.7);
/// let hvt = leakage_nw(&p, VtClass::Hvt, 2.7);
/// assert!(hvt < svt); // high-Vt leaks less at the same width
/// ```
pub fn leakage_nw(process: &Process, vt_class: VtClass, cin_ff: f64) -> f64 {
    debug_assert!(cin_ff > 0.0, "input capacitance must be positive");
    process.width_um(cin_ff) * BASE_LEAKAGE_NW_PER_UM * VtTiming::of(vt_class).leakage_factor
}

/// Power estimate for a sized path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEstimate {
    /// Total switched capacitance (fF): gate input caps, their parasitic
    /// output caps, and the fixed off-path/terminal loads.
    pub switched_cap_ff: f64,
    /// Energy per full switching cycle of the path (fJ): `C_sw · V_DD²`.
    pub energy_per_cycle_fj: f64,
    /// Dynamic power (µW) at the given clock and activity.
    pub dynamic_power_uw: f64,
}

/// Options for power estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerOptions {
    /// Clock frequency (MHz).
    pub clock_mhz: f64,
    /// Switching activity factor `α` (fraction of cycles the path
    /// toggles; 1.0 = toggles every cycle).
    pub activity: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            clock_mhz: 250.0, // a typical 0.25 µm-era clock
            activity: 0.5,
        }
    }
}

/// Estimate the switching power of `path` under `sizes`.
///
/// `C_sw` counts every capacitance a path transition charges or
/// discharges: each stage's input capacitance and its drain parasitic,
/// each stage's off-path load, and the terminal load.
///
/// Unit bookkeeping: `fF · V² = fJ`; `fJ · MHz = nW·1e3 = µW·1e-3` —
/// so `P[µW] = E[fJ] · f[MHz] · α · 1e-3`.
///
/// # Panics
///
/// Panics if `sizes.len() != path.len()`.
///
/// # Example
///
/// ```
/// use pops_delay::power::{switching_power, PowerOptions};
/// use pops_delay::{Library, PathStage, TimedPath};
/// use pops_netlist::CellKind;
///
/// let lib = Library::cmos025();
/// let path = TimedPath::new(
///     vec![PathStage::new(CellKind::Inv); 3],
///     lib.min_drive_ff(),
///     20.0,
/// );
/// let sizes = path.min_sizes(&lib);
/// let p = switching_power(&lib, &path, &sizes, &PowerOptions::default());
/// assert!(p.dynamic_power_uw > 0.0);
/// ```
pub fn switching_power(
    lib: &Library,
    path: &TimedPath,
    sizes: &[f64],
    options: &PowerOptions,
) -> PowerEstimate {
    assert_eq!(sizes.len(), path.len(), "one size per stage");
    let vdd = lib.process().vdd;
    let mut c_sw = path.terminal_load_ff();
    for (i, stage) in path.stages().iter().enumerate() {
        let cell = lib.cell(stage.cell);
        c_sw += sizes[i]; // the gate's own input pins
        c_sw += cell.cpar_ff(sizes[i]); // its drain parasitics
        c_sw += stage.off_path_load_ff; // the off-path pins it toggles
    }
    let energy_fj = c_sw * vdd * vdd;
    let power_uw = energy_fj * options.clock_mhz * options.activity * 1e-3;
    PowerEstimate {
        switched_cap_ff: c_sw,
        energy_per_cycle_fj: energy_fj,
        dynamic_power_uw: power_uw,
    }
}

/// The paper's proportionality: power scales with the `ΣW` width metric
/// at fixed structure. Returns `P(sizing_b) / P(sizing_a)`.
pub fn power_ratio(
    lib: &Library,
    path: &TimedPath,
    sizes_a: &[f64],
    sizes_b: &[f64],
    options: &PowerOptions,
) -> f64 {
    let a = switching_power(lib, path, sizes_a, options);
    let b = switching_power(lib, path, sizes_b, options);
    b.dynamic_power_uw / a.dynamic_power_uw
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathStage;
    use pops_netlist::CellKind;

    fn setup() -> (Library, TimedPath) {
        let lib = Library::cmos025();
        let path = TimedPath::new(
            vec![
                PathStage::new(CellKind::Inv),
                PathStage::with_load(CellKind::Nand2, 10.0),
                PathStage::new(CellKind::Inv),
            ],
            lib.min_drive_ff(),
            30.0,
        );
        (lib, path)
    }

    #[test]
    fn bigger_gates_burn_more_power() {
        let (lib, path) = setup();
        let small = path.min_sizes(&lib);
        let mut big = small.clone();
        big[1] *= 4.0;
        big[2] *= 4.0;
        let opts = PowerOptions::default();
        let p_small = switching_power(&lib, &path, &small, &opts);
        let p_big = switching_power(&lib, &path, &big, &opts);
        assert!(p_big.dynamic_power_uw > p_small.dynamic_power_uw);
        assert!(power_ratio(&lib, &path, &small, &big, &opts) > 1.0);
    }

    #[test]
    fn power_is_linear_in_frequency_and_activity() {
        let (lib, path) = setup();
        let sizes = path.min_sizes(&lib);
        let base = switching_power(
            &lib,
            &path,
            &sizes,
            &PowerOptions {
                clock_mhz: 100.0,
                activity: 0.5,
            },
        );
        let double_f = switching_power(
            &lib,
            &path,
            &sizes,
            &PowerOptions {
                clock_mhz: 200.0,
                activity: 0.5,
            },
        );
        let double_a = switching_power(
            &lib,
            &path,
            &sizes,
            &PowerOptions {
                clock_mhz: 100.0,
                activity: 1.0,
            },
        );
        assert!((double_f.dynamic_power_uw - 2.0 * base.dynamic_power_uw).abs() < 1e-12);
        assert!((double_a.dynamic_power_uw - 2.0 * base.dynamic_power_uw).abs() < 1e-12);
    }

    #[test]
    fn energy_is_cv_squared() {
        let (lib, path) = setup();
        let sizes = path.min_sizes(&lib);
        let p = switching_power(&lib, &path, &sizes, &PowerOptions::default());
        let vdd = lib.process().vdd;
        assert!((p.energy_per_cycle_fj - p.switched_cap_ff * vdd * vdd).abs() < 1e-9);
    }

    #[test]
    fn switched_cap_includes_all_loads() {
        let (lib, path) = setup();
        let sizes = path.min_sizes(&lib);
        let p = switching_power(&lib, &path, &sizes, &PowerOptions::default());
        // Lower bound: sum of sizes + terminal + off-path.
        let floor: f64 = sizes.iter().sum::<f64>() + path.terminal_load_ff() + 10.0;
        assert!(p.switched_cap_ff > floor);
    }

    #[test]
    fn leakage_orders_by_vt_and_scales_with_width() {
        let p = crate::process::Process::cmos025();
        let lvt = leakage_nw(&p, VtClass::Lvt, 2.7);
        let svt = leakage_nw(&p, VtClass::Svt, 2.7);
        let hvt = leakage_nw(&p, VtClass::Hvt, 2.7);
        assert!(lvt > svt && svt > hvt, "{lvt} > {svt} > {hvt}");
        // Linear in width at fixed Vt.
        let double = leakage_nw(&p, VtClass::Svt, 5.4);
        assert!((double - 2.0 * svt).abs() < 1e-12);
        // Magnitude: a min-size SVT gate leaks well under a µW.
        assert!(svt > 0.0 && svt < 1000.0);
    }

    #[test]
    fn magnitudes_are_physical() {
        // A handful of fF at 2.5 V and 250 MHz: microwatts, not watts.
        let (lib, path) = setup();
        let sizes = path.min_sizes(&lib);
        let p = switching_power(&lib, &path, &sizes, &PowerOptions::default());
        assert!(
            (0.01..1000.0).contains(&p.dynamic_power_uw),
            "{} uW",
            p.dynamic_power_uw
        );
    }
}
