//! Closed-form CMOS timing model from Verle et al., DATE 2005 (eqs. 1–3).
//!
//! The model expresses, for every gate in its environment:
//!
//! * the **output transition time** `τ_out = τ · S · C_L / C_IN` (eq. 2),
//!   where the symmetry factor `S` folds in the P/N configuration ratio
//!   `k`, the N/P drive ratio `R` and the logical weight `DW` of the
//!   series transistor array (eq. 3);
//! * the **switching delay** (eq. 1)
//!   `t = v_T/2 · τ_in + ½ (1 + 2·C_M/(C_M + C_L)) · τ_out`,
//!   which captures the input-slope effect (first term) and the
//!   input-to-output Miller coupling `C_M` (second term).
//!
//! On a *bounded* path (input drive and terminal load fixed) the resulting
//! path delay is a convex function of the gate input capacitances — the
//! property every optimization in `pops-core` relies on.
//!
//! # Example
//!
//! ```
//! use pops_delay::{Library, Edge};
//! use pops_netlist::CellKind;
//!
//! let lib = Library::cmos025();
//! // A min-size inverter driving four copies of itself (FO4):
//! let cref = lib.process().c_ref_ff;
//! let d = lib.delay(CellKind::Inv, cref, 4.0 * cref, 40.0, Edge::Rising);
//! assert!(d.delay_ps > 0.0);
//! assert_eq!(d.output_edge, Edge::Falling);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod library;
pub mod model;
pub mod path;
pub mod power;
pub mod process;

pub use library::{CellTiming, Library, VtTiming};
pub use model::{Edge, GateDelay};
pub use path::{PathDelay, PathStage, StageDelay, TimedPath};
pub use process::{CornerSet, Process};
