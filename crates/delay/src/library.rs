//! Per-cell electrical characterization: logical weights, configuration
//! ratios and parasitics — the `DW`, `k` and `C_par` of eqs. (2)–(3).

use pops_netlist::cell::{CellKind, VtClass, ALL_CELLS};

use crate::model::{Edge, GateDelay};
use crate::process::Process;

/// Electrical scaling of one threshold-voltage variant relative to the SVT
/// baseline, after the multi-Vt characterization of Kaur & Noor (arXiv
/// 1307.3017): lowering Vt raises drive current (faster transitions) and
/// raises subthreshold leakage exponentially; raising Vt does the reverse.
///
/// The SVT factors are exactly `1.0`, so an SVT instance reproduces the
/// unscaled model bit-for-bit.
///
/// ```
/// use pops_delay::VtTiming;
/// use pops_netlist::cell::VtClass;
///
/// let svt = VtTiming::of(VtClass::Svt);
/// assert_eq!((svt.drive_factor, svt.vt_scale, svt.leakage_factor), (1.0, 1.0, 1.0));
/// assert!(VtTiming::of(VtClass::Hvt).leakage_factor < 1.0);
/// assert!(VtTiming::of(VtClass::Lvt).drive_factor < 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VtTiming {
    /// Multiplier on the output-transition scale `τ·S`: < 1 for LVT (more
    /// drive, faster edges), > 1 for HVT.
    pub drive_factor: f64,
    /// Multiplier on the reduced threshold `v_T` in the slope term of
    /// eq. (1): the effective switching threshold tracks the device Vt.
    pub vt_scale: f64,
    /// Multiplier on subthreshold leakage relative to SVT. Leakage is
    /// exponential in Vt, so the spread is wide: ~6× up for LVT, ~0.15×
    /// for HVT.
    pub leakage_factor: f64,
}

impl VtTiming {
    /// Scaling factors for a Vt variant.
    pub fn of(class: VtClass) -> VtTiming {
        match class {
            VtClass::Lvt => VtTiming {
                drive_factor: 0.90,
                vt_scale: 0.85,
                leakage_factor: 6.0,
            },
            VtClass::Svt => VtTiming {
                drive_factor: 1.0,
                vt_scale: 1.0,
                leakage_factor: 1.0,
            },
            VtClass::Hvt => VtTiming {
                drive_factor: 1.18,
                vt_scale: 1.15,
                leakage_factor: 0.15,
            },
        }
    }
}

/// Electrical view of one library cell.
///
/// * `dw_hl` / `dw_lh` — the *logical weights* of eq. (3): the ratio of the
///   current available in an inverter to that of the cell's series
///   transistor array, for the falling (N stack) and rising (P stack)
///   output edges. A lone transistor has weight 1; `n` series devices
///   weigh slightly less than `n` because of velocity-saturation relief.
/// * `k` — the P/N configuration (width) ratio of the cell.
/// * `cpar_factor` — output parasitic (drain junction) capacitance as a
///   fraction of the cell input capacitance: `C_par = cpar_factor · C_IN`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellTiming {
    /// The cell this data describes.
    pub kind: CellKind,
    /// Falling-edge logical weight `DW_HL` (N pull-down stack).
    pub dw_hl: f64,
    /// Rising-edge logical weight `DW_LH` (P pull-up stack).
    pub dw_lh: f64,
    /// P/N width configuration ratio `k`.
    pub k: f64,
    /// Parasitic output capacitance per unit input capacitance.
    pub cpar_factor: f64,
}

impl CellTiming {
    /// Symmetry factor `S_HL` of eq. (3) for this cell.
    pub fn s_hl(&self) -> f64 {
        self.dw_hl * (1.0 + self.k) / 2.0
    }

    /// Symmetry factor `S_LH` of eq. (3) for this cell.
    pub fn s_lh(&self, process: &Process) -> f64 {
        self.dw_lh * process.r_ratio * (1.0 + self.k) / (2.0 * self.k)
    }

    /// Symmetry factor for a given output edge.
    pub fn s_factor(&self, process: &Process, output_edge: Edge) -> f64 {
        match output_edge {
            Edge::Falling => self.s_hl(),
            Edge::Rising => self.s_lh(process),
        }
    }

    /// Parasitic output capacitance (fF) at input capacitance `cin_ff`.
    pub fn cpar_ff(&self, cin_ff: f64) -> f64 {
        self.cpar_factor * cin_ff
    }

    /// Input-to-output coupling capacitance `C_M` (fF): half the input
    /// capacitance of the P (rising input) or N (falling input) device.
    pub fn miller_ff(&self, cin_ff: f64, input_edge: Edge) -> f64 {
        match input_edge {
            Edge::Rising => 0.5 * cin_ff * self.k / (1.0 + self.k),
            Edge::Falling => 0.5 * cin_ff / (1.0 + self.k),
        }
    }
}

/// Logical weight of `n` series devices: sub-linear in `n` because stacked
/// devices see reduced drain saturation (velocity-saturation relief).
fn stack_weight(n: usize) -> f64 {
    1.0 + 0.85 * (n as f64 - 1.0)
}

fn characterize(kind: CellKind) -> CellTiming {
    use CellKind::*;
    let dw_hl = stack_weight(kind.series_nmos());
    let dw_lh = stack_weight(kind.series_pmos());
    // Configuration ratio: inverting cells keep near-balanced rise/fall by
    // construction choice of the library; NORs widen P, NANDs narrow it.
    let k = match kind {
        Inv | Buf => 2.0,
        Nand2 | Nand3 | Nand4 => 1.3,
        Nor2 | Nor3 | Nor4 => 2.2,
        And2 | And3 | And4 => 1.5,
        Or2 | Or3 | Or4 => 2.2,
        Xor2 | Xnor2 => 2.0,
    };
    // Drain parasitics grow with the number of devices on the output node.
    let cpar_factor = match kind.num_inputs() {
        1 => {
            if kind == Buf {
                1.3
            } else {
                1.0
            }
        }
        2 => 1.5,
        3 => 2.0,
        _ => 2.5,
    };
    CellTiming {
        kind,
        dw_hl,
        dw_lh,
        k,
        cpar_factor,
    }
}

/// A characterized cell library: a [`Process`] plus [`CellTiming`] data for
/// every [`CellKind`].
///
/// # Example
///
/// ```
/// use pops_delay::Library;
/// use pops_netlist::CellKind;
///
/// let lib = Library::cmos025();
/// let nor3 = lib.cell(CellKind::Nor3);
/// let inv = lib.cell(CellKind::Inv);
/// // NOR3 stacks three PMOS devices: much weaker rising edge than INV.
/// assert!(nor3.s_lh(lib.process()) > 2.0 * inv.s_lh(lib.process()));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Library {
    process: Process,
    cells: Vec<CellTiming>,
}

impl Library {
    /// Build a library for an arbitrary process.
    pub fn new(process: Process) -> Self {
        let cells = ALL_CELLS.iter().map(|&k| characterize(k)).collect();
        Library { process, cells }
    }

    /// The default 0.25 µm library used throughout the paper reproduction.
    pub fn cmos025() -> Self {
        Library::new(Process::cmos025())
    }

    /// The process behind this library.
    pub fn process(&self) -> &Process {
        &self.process
    }

    /// Electrical data for a cell.
    pub fn cell(&self, kind: CellKind) -> &CellTiming {
        let idx = ALL_CELLS
            .iter()
            .position(|&k| k == kind)
            .expect("every CellKind is characterized");
        &self.cells[idx]
    }

    /// Minimum available input capacitance ("minimum drive") for any cell:
    /// the paper's `C_REF`.
    pub fn min_drive_ff(&self) -> f64 {
        self.process.c_ref_ff
    }

    /// Delay and output transition of `kind` with input capacitance
    /// `cin_ff`, external load `cl_ext_ff` (fF, parasitic added
    /// internally), incoming transition `tau_in_ps` and `input_edge`.
    ///
    /// Convenience wrapper over [`crate::model::gate_delay`].
    pub fn delay(
        &self,
        kind: CellKind,
        cin_ff: f64,
        cl_ext_ff: f64,
        tau_in_ps: f64,
        input_edge: Edge,
    ) -> GateDelay {
        crate::model::gate_delay(self, kind, cin_ff, cl_ext_ff, tau_in_ps, input_edge)
    }
}

impl Default for Library {
    fn default() -> Self {
        Library::cmos025()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_is_characterized() {
        let lib = Library::cmos025();
        for &kind in ALL_CELLS.iter() {
            let c = lib.cell(kind);
            assert_eq!(c.kind, kind);
            assert!(c.dw_hl >= 1.0);
            assert!(c.dw_lh >= 1.0);
            assert!(c.k > 0.0);
            assert!(c.cpar_factor > 0.0);
        }
    }

    #[test]
    fn logical_weights_grow_with_stack_depth() {
        let lib = Library::cmos025();
        let hl = |k: CellKind| lib.cell(k).dw_hl;
        assert!(hl(CellKind::Nand2) < hl(CellKind::Nand3));
        assert!(hl(CellKind::Nand3) < hl(CellKind::Nand4));
        let lh = |k: CellKind| lib.cell(k).dw_lh;
        assert!(lh(CellKind::Nor2) < lh(CellKind::Nor3));
        assert!(lh(CellKind::Nor3) < lh(CellKind::Nor4));
    }

    #[test]
    fn inverter_is_the_reference_cell() {
        let lib = Library::cmos025();
        let inv = lib.cell(CellKind::Inv);
        assert_eq!(inv.dw_hl, 1.0);
        assert_eq!(inv.dw_lh, 1.0);
    }

    #[test]
    fn nor_rising_edge_is_weakest() {
        // This asymmetry is the root cause of Table 2's ordering: the NOR3
        // pull-up stacks three already-weak PMOS devices.
        let lib = Library::cmos025();
        let p = lib.process();
        let s = |k: CellKind| lib.cell(k).s_lh(p).max(lib.cell(k).s_hl());
        assert!(s(CellKind::Nor3) > s(CellKind::Nand3));
        assert!(s(CellKind::Nor2) > s(CellKind::Nand2));
        assert!(s(CellKind::Nand2) > s(CellKind::Inv));
    }

    #[test]
    fn miller_cap_splits_by_edge() {
        let lib = Library::cmos025();
        let inv = lib.cell(CellKind::Inv);
        let rising = inv.miller_ff(3.0, Edge::Rising);
        let falling = inv.miller_ff(3.0, Edge::Falling);
        // k = 2: P device is twice as wide, so rising-input coupling
        // (through the P gate-drain) is twice the falling-input coupling.
        assert!((rising - 2.0 * falling).abs() < 1e-12);
        assert!(rising + falling <= 0.5 * 3.0 + 1e-12);
    }

    #[test]
    fn vt_variants_order_speed_against_leakage() {
        let lvt = VtTiming::of(VtClass::Lvt);
        let svt = VtTiming::of(VtClass::Svt);
        let hvt = VtTiming::of(VtClass::Hvt);
        assert!(lvt.drive_factor < svt.drive_factor);
        assert!(svt.drive_factor < hvt.drive_factor);
        assert!(lvt.vt_scale < svt.vt_scale);
        assert!(svt.vt_scale < hvt.vt_scale);
        assert!(lvt.leakage_factor > svt.leakage_factor);
        assert!(svt.leakage_factor > hvt.leakage_factor);
        assert_eq!(svt.drive_factor, 1.0);
        assert_eq!(svt.vt_scale, 1.0);
        assert_eq!(svt.leakage_factor, 1.0);
    }

    #[test]
    fn s_factor_dispatches_on_edge() {
        let lib = Library::cmos025();
        let c = lib.cell(CellKind::Nand2);
        assert_eq!(c.s_factor(lib.process(), Edge::Falling), c.s_hl());
        assert_eq!(
            c.s_factor(lib.process(), Edge::Rising),
            c.s_lh(lib.process())
        );
    }
}
