//! Process-level electrical parameters.

/// Electrical description of a CMOS process node.
///
/// Units throughout the workspace: capacitance in **fF**, time in **ps**,
/// width in **µm**, voltage in **V**.
///
/// # Example
///
/// ```
/// let p = pops_delay::Process::cmos025();
/// assert!(p.vtn_reduced() > 0.0 && p.vtn_reduced() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// Unit transition time `τ` of the process (ps) — eq. (2)'s metric.
    pub tau_ps: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// NMOS threshold voltage (V).
    pub vtn: f64,
    /// PMOS threshold voltage magnitude (V).
    pub vtp: f64,
    /// `R`: current available in an NMOS relative to a PMOS of identical
    /// width (mobility ratio), eq. (3).
    pub r_ratio: f64,
    /// `C_REF`: input capacitance of the minimum-drive inverter (fF); the
    /// normalization unit of Fig. 1's x-axis.
    pub c_ref_ff: f64,
    /// Gate capacitance per µm of transistor width (fF/µm); converts input
    /// capacitance to the `ΣW` area metric the paper reports.
    pub cg_per_um: f64,
    /// Minimum drawn transistor width (µm).
    pub min_width_um: f64,
}

impl Process {
    /// The 0.25 µm-class process used for every experiment in the paper.
    ///
    /// Values are representative of a generic 2.5 V, 0.25 µm bulk CMOS
    /// node (the paper's foundry deck is proprietary): `τ` calibrated so a
    /// fanout-4 inverter delay lands near 90 ps.
    pub fn cmos025() -> Self {
        Process {
            tau_ps: 15.0,
            vdd: 2.5,
            vtn: 0.50,
            vtp: 0.55,
            r_ratio: 2.4,
            c_ref_ff: 2.7,
            cg_per_um: 1.8,
            min_width_um: 0.5,
        }
    }

    /// Reduced NMOS threshold `v_TN = V_TN / V_DD` (eq. 1).
    pub fn vtn_reduced(&self) -> f64 {
        self.vtn / self.vdd
    }

    /// Reduced PMOS threshold `v_TP = V_TP / V_DD` (eq. 1).
    pub fn vtp_reduced(&self) -> f64 {
        self.vtp / self.vdd
    }

    /// Convert an input capacitance (fF) into total transistor width (µm).
    pub fn width_um(&self, cin_ff: f64) -> f64 {
        cin_ff / self.cg_per_um
    }
}

impl Default for Process {
    fn default() -> Self {
        Process::cmos025()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_thresholds_are_physical() {
        let p = Process::cmos025();
        assert!((0.1..0.4).contains(&p.vtn_reduced()));
        assert!((0.1..0.4).contains(&p.vtp_reduced()));
    }

    #[test]
    fn width_conversion_is_linear() {
        let p = Process::cmos025();
        let w1 = p.width_um(1.0);
        let w5 = p.width_um(5.0);
        assert!((w5 - 5.0 * w1).abs() < 1e-12);
    }

    #[test]
    fn default_is_cmos025() {
        assert_eq!(Process::default(), Process::cmos025());
    }
}
