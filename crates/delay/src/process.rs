//! Process-level electrical parameters.

/// Electrical description of a CMOS process node.
///
/// Units throughout the workspace: capacitance in **fF**, time in **ps**,
/// width in **µm**, voltage in **V**.
///
/// # Example
///
/// ```
/// let p = pops_delay::Process::cmos025();
/// assert!(p.vtn_reduced() > 0.0 && p.vtn_reduced() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Process {
    /// Unit transition time `τ` of the process (ps) — eq. (2)'s metric.
    pub tau_ps: f64,
    /// Supply voltage (V).
    pub vdd: f64,
    /// NMOS threshold voltage (V).
    pub vtn: f64,
    /// PMOS threshold voltage magnitude (V).
    pub vtp: f64,
    /// `R`: current available in an NMOS relative to a PMOS of identical
    /// width (mobility ratio), eq. (3).
    pub r_ratio: f64,
    /// `C_REF`: input capacitance of the minimum-drive inverter (fF); the
    /// normalization unit of Fig. 1's x-axis.
    pub c_ref_ff: f64,
    /// Gate capacitance per µm of transistor width (fF/µm); converts input
    /// capacitance to the `ΣW` area metric the paper reports.
    pub cg_per_um: f64,
    /// Minimum drawn transistor width (µm).
    pub min_width_um: f64,
}

impl Process {
    /// The 0.25 µm-class process used for every experiment in the paper.
    ///
    /// Values are representative of a generic 2.5 V, 0.25 µm bulk CMOS
    /// node (the paper's foundry deck is proprietary): `τ` calibrated so a
    /// fanout-4 inverter delay lands near 90 ps.
    pub fn cmos025() -> Self {
        Process {
            tau_ps: 15.0,
            vdd: 2.5,
            vtn: 0.50,
            vtp: 0.55,
            r_ratio: 2.4,
            c_ref_ff: 2.7,
            cg_per_um: 1.8,
            min_width_um: 0.5,
        }
    }

    /// Reduced NMOS threshold `v_TN = V_TN / V_DD` (eq. 1).
    pub fn vtn_reduced(&self) -> f64 {
        self.vtn / self.vdd
    }

    /// Reduced PMOS threshold `v_TP = V_TP / V_DD` (eq. 1).
    pub fn vtp_reduced(&self) -> f64 {
        self.vtp / self.vdd
    }

    /// Convert an input capacitance (fF) into total transistor width (µm).
    pub fn width_um(&self, cin_ff: f64) -> f64 {
        cin_ff / self.cg_per_um
    }
}

impl Process {
    /// Derate this process into its slow corner: transitions 25 % slower,
    /// supply 10 % low, thresholds 10 % high. Geometry (`r_ratio`,
    /// `c_ref_ff`, `cg_per_um`, `min_width_um`) is corner-invariant.
    pub fn slow_corner(&self) -> Process {
        Process {
            tau_ps: self.tau_ps * 1.25,
            vdd: self.vdd * 0.9,
            vtn: self.vtn * 1.1,
            vtp: self.vtp * 1.1,
            ..self.clone()
        }
    }

    /// Derate this process into its fast corner: transitions 20 % faster,
    /// supply 10 % high, thresholds 10 % low.
    pub fn fast_corner(&self) -> Process {
        Process {
            tau_ps: self.tau_ps * 0.8,
            vdd: self.vdd * 1.1,
            vtn: self.vtn * 0.9,
            vtp: self.vtp * 0.9,
            ..self.clone()
        }
    }
}

impl Default for Process {
    fn default() -> Self {
        Process::cmos025()
    }
}

/// An ordered set of [`Process`] corners analyzed together.
///
/// Corner 0 is the **primary** corner: single-corner callers and legacy
/// queries read it, so it should be the typical point. The ordering is part
/// of the engine contract — per-corner timing slabs are stored
/// corner-innermost with this index.
///
/// # Example
///
/// ```
/// use pops_delay::{CornerSet, Process};
///
/// let corners = CornerSet::slow_typical_fast(Process::cmos025());
/// assert_eq!(corners.len(), 3);
/// assert_eq!(corners.primary(), &Process::cmos025());
/// assert!(corners.get(1).tau_ps > corners.primary().tau_ps); // slow
/// assert!(corners.get(2).tau_ps < corners.primary().tau_ps); // fast
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CornerSet {
    corners: Vec<Process>,
}

impl CornerSet {
    /// A single-corner set: the degenerate case every pre-corner analysis
    /// path reduces to.
    pub fn single(process: Process) -> Self {
        CornerSet {
            corners: vec![process],
        }
    }

    /// The canonical three-corner set around `base`: `[typical, slow,
    /// fast]` with typical (= `base`) as the primary corner.
    pub fn slow_typical_fast(base: Process) -> Self {
        let slow = base.slow_corner();
        let fast = base.fast_corner();
        CornerSet {
            corners: vec![base, slow, fast],
        }
    }

    /// Build from an explicit corner list.
    ///
    /// # Panics
    ///
    /// Panics if `corners` is empty — the engine always needs a primary.
    pub fn from_corners(corners: Vec<Process>) -> Self {
        assert!(!corners.is_empty(), "a CornerSet needs at least one corner");
        CornerSet { corners }
    }

    /// Number of corners.
    pub fn len(&self) -> usize {
        self.corners.len()
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.corners.is_empty()
    }

    /// The primary (index-0) corner.
    pub fn primary(&self) -> &Process {
        &self.corners[0]
    }

    /// Corner `idx`.
    pub fn get(&self, idx: usize) -> &Process {
        &self.corners[idx]
    }

    /// Iterate the corners in index order.
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.corners.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_thresholds_are_physical() {
        let p = Process::cmos025();
        assert!((0.1..0.4).contains(&p.vtn_reduced()));
        assert!((0.1..0.4).contains(&p.vtp_reduced()));
    }

    #[test]
    fn width_conversion_is_linear() {
        let p = Process::cmos025();
        let w1 = p.width_um(1.0);
        let w5 = p.width_um(5.0);
        assert!((w5 - 5.0 * w1).abs() < 1e-12);
    }

    #[test]
    fn default_is_cmos025() {
        assert_eq!(Process::default(), Process::cmos025());
    }

    #[test]
    fn corners_derate_only_electrical_parameters() {
        let base = Process::cmos025();
        for corner in [base.slow_corner(), base.fast_corner()] {
            assert_eq!(corner.r_ratio, base.r_ratio);
            assert_eq!(corner.c_ref_ff, base.c_ref_ff);
            assert_eq!(corner.cg_per_um, base.cg_per_um);
            assert_eq!(corner.min_width_um, base.min_width_um);
        }
        assert!(base.slow_corner().tau_ps > base.tau_ps);
        assert!(base.fast_corner().tau_ps < base.tau_ps);
        // Reduced thresholds move opposite to supply at each corner.
        assert!(base.slow_corner().vtn_reduced() > base.vtn_reduced());
        assert!(base.fast_corner().vtn_reduced() < base.vtn_reduced());
    }

    #[test]
    fn corner_set_primary_is_typical() {
        let set = CornerSet::slow_typical_fast(Process::cmos025());
        assert_eq!(set.len(), 3);
        assert_eq!(set.primary(), &Process::cmos025());
        assert_eq!(set.get(1), &Process::cmos025().slow_corner());
        assert_eq!(set.get(2), &Process::cmos025().fast_corner());
        assert!(!set.is_empty());
        assert_eq!(set.iter().count(), 3);
    }

    #[test]
    fn single_corner_set() {
        let set = CornerSet::single(Process::cmos025());
        assert_eq!(set.len(), 1);
        assert_eq!(set.primary(), &Process::cmos025());
    }

    #[test]
    #[should_panic(expected = "at least one corner")]
    fn empty_corner_set_panics() {
        CornerSet::from_corners(Vec::new());
    }
}
