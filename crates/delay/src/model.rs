//! Eqs. (1)–(3): single-gate delay and output transition time.

use pops_netlist::CellKind;

use crate::library::{Library, VtTiming};

/// A signal edge direction at a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Low-to-high transition.
    Rising,
    /// High-to-low transition.
    Falling,
}

impl Edge {
    /// The opposite edge.
    pub fn flipped(self) -> Edge {
        match self {
            Edge::Rising => Edge::Falling,
            Edge::Falling => Edge::Rising,
        }
    }

    /// Edge at a cell output given this edge at its (on-path) input.
    pub fn through(self, cell: CellKind) -> Edge {
        if cell.is_inverting() {
            self.flipped()
        } else {
            self
        }
    }
}

/// Result of a single-gate delay evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDelay {
    /// Switching delay (ps), 50 % input to 50 % output.
    pub delay_ps: f64,
    /// Output transition time (ps), eq. (2).
    pub output_transition_ps: f64,
    /// Edge direction at the output.
    pub output_edge: Edge,
}

/// Evaluate eqs. (1)–(3) for one gate.
///
/// * `cin_ff` — gate input (pin) capacitance: the sizing variable.
/// * `cl_ext_ff` — external load (fanin pin caps of driven gates + wire);
///   the cell's own drain parasitic `C_par` is added internally.
/// * `tau_in_ps` — transition time of the driving edge at the gate input.
/// * `input_edge` — direction of that edge.
///
/// The reduced threshold used by the slope term follows the switching
/// device: a rising input drives the N transistor (`v_TN`), a falling
/// input the P transistor (`v_TP`).
///
/// # Panics
///
/// Panics (debug assertions) on non-positive capacitances or negative
/// transition times — callers own input validation.
///
/// # Example
///
/// ```
/// use pops_delay::{Library, Edge};
/// use pops_netlist::CellKind;
///
/// let lib = Library::cmos025();
/// let fast = lib.delay(CellKind::Inv, 10.0, 20.0, 30.0, Edge::Rising);
/// let slow = lib.delay(CellKind::Inv, 10.0, 40.0, 30.0, Edge::Rising);
/// assert!(slow.delay_ps > fast.delay_ps); // heavier load, longer delay
/// ```
pub fn gate_delay(
    lib: &Library,
    kind: CellKind,
    cin_ff: f64,
    cl_ext_ff: f64,
    tau_in_ps: f64,
    input_edge: Edge,
) -> GateDelay {
    gate_delay_with_output_edge(
        lib,
        kind,
        cin_ff,
        cl_ext_ff,
        tau_in_ps,
        input_edge,
        input_edge.through(kind),
    )
}

/// Evaluate eqs. (1)–(3) with an explicitly chosen output edge.
///
/// Needed for *binate* cells (XOR/XNOR): a rising input can produce either
/// output edge depending on the side input, so worst-case STA must probe
/// both. For unate cells, [`gate_delay`] (which derives the output edge
/// from the cell's polarity) is the right entry point.
///
/// The input edge selects the slope-term threshold and the Miller
/// coupling device; the output edge selects the symmetry factor.
#[allow(clippy::too_many_arguments)]
pub fn gate_delay_with_output_edge(
    lib: &Library,
    kind: CellKind,
    cin_ff: f64,
    cl_ext_ff: f64,
    tau_in_ps: f64,
    input_edge: Edge,
    output_edge: Edge,
) -> GateDelay {
    debug_assert!(cin_ff > 0.0, "input capacitance must be positive");
    debug_assert!(cl_ext_ff >= 0.0, "load must be non-negative");
    debug_assert!(tau_in_ps >= 0.0, "input transition must be non-negative");

    let process = lib.process();
    let cell = lib.cell(kind);

    // eq. (2)-(3): output transition time.
    let cl_total = cell.cpar_ff(cin_ff) + cl_ext_ff;
    let s = cell.s_factor(process, output_edge);
    let tau_out = process.tau_ps * s * cl_total / cin_ff;

    // eq. (1): slope term + Miller-amplified output term.
    let vt = match input_edge {
        Edge::Rising => process.vtn_reduced(),
        Edge::Falling => process.vtp_reduced(),
    };
    let cm = cell.miller_ff(cin_ff, input_edge);
    let miller = 1.0 + 2.0 * cm / (cm + cl_total);
    let delay = 0.5 * vt * tau_in_ps + 0.5 * miller * tau_out;

    GateDelay {
        delay_ps: delay,
        output_transition_ps: tau_out,
        output_edge,
    }
}

/// Evaluate eqs. (1)–(3) for a threshold-voltage variant of the cell.
///
/// The Vt variant scales the output-transition scale (`drive_factor` on
/// `τ·S`) and the effective reduced threshold (`vt_scale` on `v_T`);
/// capacitances are unchanged (same drawn widths, different implants). With
/// [`VtTiming::of`]`(Svt)` — all factors exactly `1.0` — this reproduces
/// [`gate_delay_with_output_edge`] bit-for-bit.
#[allow(clippy::too_many_arguments)]
pub fn gate_delay_with_output_edge_vt(
    lib: &Library,
    kind: CellKind,
    vt_timing: VtTiming,
    cin_ff: f64,
    cl_ext_ff: f64,
    tau_in_ps: f64,
    input_edge: Edge,
    output_edge: Edge,
) -> GateDelay {
    debug_assert!(cin_ff > 0.0, "input capacitance must be positive");
    debug_assert!(cl_ext_ff >= 0.0, "load must be non-negative");
    debug_assert!(tau_in_ps >= 0.0, "input transition must be non-negative");

    let process = lib.process();
    let cell = lib.cell(kind);

    let cl_total = cell.cpar_ff(cin_ff) + cl_ext_ff;
    let s = cell.s_factor(process, output_edge);
    let tau_out = process.tau_ps * s * vt_timing.drive_factor * cl_total / cin_ff;

    let vt = match input_edge {
        Edge::Rising => process.vtn_reduced(),
        Edge::Falling => process.vtp_reduced(),
    } * vt_timing.vt_scale;
    let cm = cell.miller_ff(cin_ff, input_edge);
    let miller = 1.0 + 2.0 * cm / (cm + cl_total);
    let delay = 0.5 * vt * tau_in_ps + 0.5 * miller * tau_out;

    GateDelay {
        delay_ps: delay,
        output_transition_ps: tau_out,
        output_edge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_netlist::cell::VtClass;

    fn lib() -> Library {
        Library::cmos025()
    }

    #[test]
    fn delay_increases_with_load() {
        let lib = lib();
        let mut last = 0.0;
        for cl in [5.0, 10.0, 20.0, 40.0, 80.0] {
            let d = gate_delay(&lib, CellKind::Inv, 5.0, cl, 20.0, Edge::Rising);
            assert!(d.delay_ps > last);
            last = d.delay_ps;
        }
    }

    #[test]
    fn delay_decreases_with_size_at_fixed_load() {
        let lib = lib();
        let mut last = f64::INFINITY;
        for cin in [2.7, 5.4, 10.8, 21.6] {
            let d = gate_delay(&lib, CellKind::Inv, cin, 50.0, 20.0, Edge::Rising);
            assert!(d.delay_ps < last, "cin={cin}: {} !< {last}", d.delay_ps);
            last = d.delay_ps;
        }
    }

    #[test]
    fn transition_scales_linearly_with_fanout() {
        let lib = lib();
        // With C_par ∝ C_IN, τ_out = τ·S·(cpar_factor + F) where F = CL/CIN.
        let a = gate_delay(&lib, CellKind::Inv, 4.0, 16.0, 0.0, Edge::Rising);
        let b = gate_delay(&lib, CellKind::Inv, 8.0, 32.0, 0.0, Edge::Rising);
        assert!((a.output_transition_ps - b.output_transition_ps).abs() < 1e-9);
    }

    #[test]
    fn slope_term_is_linear_in_input_transition() {
        let lib = lib();
        let d0 = gate_delay(&lib, CellKind::Nand2, 6.0, 20.0, 0.0, Edge::Rising);
        let d1 = gate_delay(&lib, CellKind::Nand2, 6.0, 20.0, 100.0, Edge::Rising);
        let d2 = gate_delay(&lib, CellKind::Nand2, 6.0, 20.0, 200.0, Edge::Rising);
        let slope1 = d1.delay_ps - d0.delay_ps;
        let slope2 = d2.delay_ps - d1.delay_ps;
        assert!((slope1 - slope2).abs() < 1e-9);
        // And the coefficient is v_TN/2.
        let expected = 0.5 * lib.process().vtn_reduced() * 100.0;
        assert!((slope1 - expected).abs() < 1e-9);
    }

    #[test]
    fn inverting_cells_flip_edges() {
        let lib = lib();
        let d = gate_delay(&lib, CellKind::Nor2, 6.0, 10.0, 10.0, Edge::Rising);
        assert_eq!(d.output_edge, Edge::Falling);
        let d = gate_delay(&lib, CellKind::And2, 6.0, 10.0, 10.0, Edge::Rising);
        assert_eq!(d.output_edge, Edge::Rising);
    }

    #[test]
    fn nor_rising_output_slower_than_nand_falling_context() {
        // Same sizes and loads: producing a rising output through a NOR3's
        // stacked PMOS is slower than a falling output through NAND3's
        // stacked NMOS (R > 1 penalizes P stacks).
        let lib = lib();
        let nor = gate_delay(&lib, CellKind::Nor3, 8.0, 30.0, 50.0, Edge::Falling);
        assert_eq!(nor.output_edge, Edge::Rising);
        let nand = gate_delay(&lib, CellKind::Nand3, 8.0, 30.0, 50.0, Edge::Rising);
        assert_eq!(nand.output_edge, Edge::Falling);
        assert!(nor.delay_ps > nand.delay_ps);
    }

    #[test]
    fn miller_amplification_bounded_between_one_and_three() {
        // 1 ≤ 1 + 2CM/(CM+CL) < 3 for any CM, CL > 0; at huge loads → 1.
        let lib = lib();
        let light = gate_delay(&lib, CellKind::Inv, 10.0, 0.1, 0.0, Edge::Rising);
        let heavy = gate_delay(&lib, CellKind::Inv, 10.0, 1e6, 0.0, Edge::Rising);
        // Extract implied Miller factors: delay = ½·m·τ_out.
        let m_light = 2.0 * light.delay_ps / light.output_transition_ps;
        let m_heavy = 2.0 * heavy.delay_ps / heavy.output_transition_ps;
        assert!(m_light > m_heavy);
        assert!(m_light < 3.0);
        assert!(m_heavy >= 1.0 - 1e-9);
    }

    #[test]
    fn fo4_inverter_delay_is_plausible_for_025um() {
        // Sanity anchor: an FO4 inverter in a 0.25 µm process should sit
        // somewhere in the 60–150 ps window.
        let lib = lib();
        let cref = lib.process().c_ref_ff;
        // Self-consistent input slope: feed the gate its own output slope.
        let mut tau_in = 50.0;
        let mut d = gate_delay(&lib, CellKind::Inv, cref, 4.0 * cref, tau_in, Edge::Rising);
        for _ in 0..10 {
            tau_in = d.output_transition_ps;
            d = gate_delay(&lib, CellKind::Inv, cref, 4.0 * cref, tau_in, Edge::Rising);
        }
        assert!(
            (60.0..150.0).contains(&d.delay_ps),
            "FO4 delay {} ps out of range",
            d.delay_ps
        );
    }

    #[test]
    fn rising_and_falling_inputs_use_different_thresholds() {
        let lib = lib();
        let r = gate_delay(&lib, CellKind::Inv, 5.0, 20.0, 100.0, Edge::Rising);
        let f = gate_delay(&lib, CellKind::Inv, 5.0, 20.0, 100.0, Edge::Falling);
        assert_ne!(r.delay_ps, f.delay_ps);
    }

    #[test]
    fn svt_variant_is_bit_identical_to_baseline() {
        let lib = lib();
        let svt = VtTiming::of(VtClass::Svt);
        for (cell, cin, cl, tau) in [
            (CellKind::Inv, 2.7, 10.8, 50.0),
            (CellKind::Nand3, 8.0, 30.0, 75.0),
            (CellKind::Nor2, 6.0, 12.0, 0.0),
        ] {
            for in_edge in [Edge::Rising, Edge::Falling] {
                let out_edge = in_edge.through(cell);
                let base = gate_delay_with_output_edge(&lib, cell, cin, cl, tau, in_edge, out_edge);
                let vt = gate_delay_with_output_edge_vt(
                    &lib, cell, svt, cin, cl, tau, in_edge, out_edge,
                );
                assert_eq!(base.delay_ps.to_bits(), vt.delay_ps.to_bits());
                assert_eq!(
                    base.output_transition_ps.to_bits(),
                    vt.output_transition_ps.to_bits()
                );
            }
        }
    }

    #[test]
    fn vt_variants_order_gate_delay() {
        // LVT < SVT < HVT in delay at identical sizing and load.
        let lib = lib();
        let d = |class| {
            gate_delay_with_output_edge_vt(
                &lib,
                CellKind::Nand2,
                VtTiming::of(class),
                6.0,
                20.0,
                60.0,
                Edge::Rising,
                Edge::Falling,
            )
            .delay_ps
        };
        assert!(d(VtClass::Lvt) < d(VtClass::Svt));
        assert!(d(VtClass::Svt) < d(VtClass::Hvt));
    }
}
