//! Bounded combinational paths: the object every POPS optimization acts on.
//!
//! A *bounded* path (paper §2.2) has its input gate capacitance fixed by
//! the latch that feeds it and its terminal load fixed by the gates or
//! registers it drives. Under the eq. (1)–(3) model the path delay is then
//! a convex function of the interior gate input capacitances, which makes
//! `Tmin` well defined and the constant-sensitivity system solvable.

use pops_netlist::CellKind;

use crate::library::Library;
use crate::model::{gate_delay, Edge};

/// One gate stage on a path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathStage {
    /// The library cell implementing the stage.
    pub cell: CellKind,
    /// Fixed off-path capacitive load at the stage output (fF): pin caps of
    /// fanout gates that are not on this path, plus wire estimate.
    pub off_path_load_ff: f64,
}

impl PathStage {
    /// A stage with no off-path load.
    pub fn new(cell: CellKind) -> Self {
        PathStage {
            cell,
            off_path_load_ff: 0.0,
        }
    }

    /// A stage with the given off-path load (fF).
    pub fn with_load(cell: CellKind, off_path_load_ff: f64) -> Self {
        PathStage {
            cell,
            off_path_load_ff,
        }
    }
}

/// Per-stage result of a path delay evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageDelay {
    /// Stage switching delay (ps).
    pub delay_ps: f64,
    /// Stage output transition time (ps).
    pub transition_ps: f64,
    /// Edge direction at the stage output.
    pub output_edge: Edge,
    /// Total external load seen by the stage (fF), excluding its own
    /// parasitic.
    pub load_ff: f64,
}

/// Full result of a path delay evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct PathDelay {
    /// Path delay (ps): sum of stage delays.
    pub total_ps: f64,
    /// Per-stage breakdown.
    pub stages: Vec<StageDelay>,
}

/// A bounded combinational path through known cells.
///
/// # Example
///
/// ```
/// use pops_delay::{Library, PathStage, TimedPath};
/// use pops_netlist::CellKind;
///
/// let lib = Library::cmos025();
/// let path = TimedPath::new(
///     vec![
///         PathStage::new(CellKind::Inv),
///         PathStage::new(CellKind::Nand2),
///         PathStage::new(CellKind::Inv),
///     ],
///     lib.min_drive_ff(), // input gate size fixed by the latch
///     50.0,               // terminal load (fF)
/// );
/// let sizes = path.min_sizes(&lib);
/// let d = path.delay(&lib, &sizes);
/// assert!(d.total_ps > 0.0);
/// assert_eq!(d.stages.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TimedPath {
    stages: Vec<PathStage>,
    source_drive_ff: f64,
    terminal_load_ff: f64,
    input_transition_ps: f64,
    input_edge: Edge,
}

impl TimedPath {
    /// Create a bounded path.
    ///
    /// * `source_drive_ff` — fixed input capacitance of the first gate.
    /// * `terminal_load_ff` — fixed load after the last gate.
    ///
    /// The path input transition defaults to 50 ps with a rising edge; use
    /// [`TimedPath::with_input_conditions`] to change it.
    ///
    /// # Panics
    ///
    /// Panics if `stages` is empty or the fixed quantities are
    /// non-positive.
    pub fn new(stages: Vec<PathStage>, source_drive_ff: f64, terminal_load_ff: f64) -> Self {
        assert!(!stages.is_empty(), "a path needs at least one stage");
        assert!(source_drive_ff > 0.0, "source drive must be positive");
        assert!(terminal_load_ff > 0.0, "terminal load must be positive");
        TimedPath {
            stages,
            source_drive_ff,
            terminal_load_ff,
            input_transition_ps: 50.0,
            input_edge: Edge::Rising,
        }
    }

    /// Set the input edge and transition time at the path input.
    pub fn with_input_conditions(mut self, edge: Edge, transition_ps: f64) -> Self {
        assert!(transition_ps >= 0.0);
        self.input_edge = edge;
        self.input_transition_ps = transition_ps;
        self
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the path has no stages (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stages.
    pub fn stages(&self) -> &[PathStage] {
        &self.stages
    }

    /// Fixed input-gate capacitance (fF).
    pub fn source_drive_ff(&self) -> f64 {
        self.source_drive_ff
    }

    /// Fixed terminal load (fF).
    pub fn terminal_load_ff(&self) -> f64 {
        self.terminal_load_ff
    }

    /// Edge at the path input.
    pub fn input_edge(&self) -> Edge {
        self.input_edge
    }

    /// Transition time at the path input (ps).
    pub fn input_transition_ps(&self) -> f64 {
        self.input_transition_ps
    }

    /// The minimum-drive sizing: every interior gate at `C_REF`, the first
    /// gate pinned at the source drive. This is the paper's `Tmax`
    /// configuration ("all the gates implemented with the minimum
    /// available drive").
    pub fn min_sizes(&self, lib: &Library) -> Vec<f64> {
        let mut sizes = vec![lib.min_drive_ff(); self.stages.len()];
        sizes[0] = self.source_drive_ff;
        sizes
    }

    /// External load seen by stage `i` under `sizes`: off-path load plus
    /// the next stage's input capacitance (or the terminal load).
    pub fn stage_load_ff(&self, i: usize, sizes: &[f64]) -> f64 {
        let downstream = if i + 1 < self.stages.len() {
            sizes[i + 1]
        } else {
            self.terminal_load_ff
        };
        self.stages[i].off_path_load_ff + downstream
    }

    /// Evaluate the full closed-form path delay under `sizes`.
    ///
    /// `sizes[i]` is the input capacitance of stage `i`; `sizes[0]` should
    /// equal [`TimedPath::source_drive_ff`] (asserted in debug builds —
    /// optimizers must not resize the latch-constrained input gate).
    ///
    /// # Panics
    ///
    /// Panics if `sizes.len() != self.len()`.
    pub fn delay(&self, lib: &Library, sizes: &[f64]) -> PathDelay {
        assert_eq!(sizes.len(), self.stages.len(), "one size per stage");
        debug_assert!(
            (sizes[0] - self.source_drive_ff).abs() < 1e-9,
            "stage 0 size is fixed by the latch constraint"
        );
        let mut tau_in = self.input_transition_ps;
        let mut edge = self.input_edge;
        let mut total = 0.0;
        let mut stages = Vec::with_capacity(self.stages.len());
        for (i, stage) in self.stages.iter().enumerate() {
            let load = self.stage_load_ff(i, sizes);
            let d = gate_delay(lib, stage.cell, sizes[i], load, tau_in, edge);
            total += d.delay_ps;
            stages.push(StageDelay {
                delay_ps: d.delay_ps,
                transition_ps: d.output_transition_ps,
                output_edge: d.output_edge,
                load_ff: load,
            });
            tau_in = d.output_transition_ps;
            edge = d.output_edge;
        }
        PathDelay {
            total_ps: total,
            stages,
        }
    }

    /// Path delay for the worse of the two possible input edges.
    pub fn delay_worst(&self, lib: &Library, sizes: &[f64]) -> f64 {
        let mut rising = self.clone();
        rising.input_edge = Edge::Rising;
        let mut falling = self.clone();
        falling.input_edge = Edge::Falling;
        rising
            .delay(lib, sizes)
            .total_ps
            .max(falling.delay(lib, sizes).total_ps)
    }

    /// Numeric gradient `∂T/∂C_IN(i)` by central differences.
    ///
    /// Index 0 is reported too (useful for diagnostics) even though the
    /// optimizers never move it.
    pub fn gradient(&self, lib: &Library, sizes: &[f64]) -> Vec<f64> {
        assert_eq!(sizes.len(), self.stages.len());
        let mut grad = Vec::with_capacity(sizes.len());
        let mut work = sizes.to_vec();
        for i in 0..sizes.len() {
            let h = (sizes[i] * 1e-5).max(1e-7);
            let orig = work[i];
            work[i] = orig + h;
            let hi = self.delay_unchecked(lib, &work);
            work[i] = orig - h;
            let lo = self.delay_unchecked(lib, &work);
            work[i] = orig;
            grad.push((hi - lo) / (2.0 * h));
        }
        grad
    }

    /// Delay without the stage-0 pin assertion (gradient probing only).
    fn delay_unchecked(&self, lib: &Library, sizes: &[f64]) -> f64 {
        let mut tau_in = self.input_transition_ps;
        let mut edge = self.input_edge;
        let mut total = 0.0;
        for (i, stage) in self.stages.iter().enumerate() {
            let load = self.stage_load_ff(i, sizes);
            let d = gate_delay(lib, stage.cell, sizes[i], load, tau_in, edge);
            total += d.delay_ps;
            tau_in = d.output_transition_ps;
            edge = d.output_edge;
        }
        total
    }

    /// Total input capacitance of a sizing (fF) — proportional to the
    /// `ΣW` area/power metric via [`crate::Process::width_um`].
    pub fn total_cin_ff(sizes: &[f64]) -> f64 {
        sizes.iter().sum()
    }

    /// The paper's `ΣW` area metric (µm) for a sizing.
    pub fn area_um(&self, lib: &Library, sizes: &[f64]) -> f64 {
        lib.process().width_um(Self::total_cin_ff(sizes))
    }

    /// Insert a stage at position `at` (the new stage drives the former
    /// stage `at`; `at == len()` appends before the terminal load).
    ///
    /// Used by buffer insertion. Returns the new path.
    ///
    /// # Panics
    ///
    /// Panics if `at == 0` (the latch-bounded input gate cannot be
    /// displaced) or `at > len()`.
    pub fn with_stage_inserted(&self, at: usize, stage: PathStage) -> TimedPath {
        assert!(at >= 1, "cannot insert before the latch-bounded input gate");
        assert!(at <= self.stages.len());
        let mut stages = self.stages.clone();
        stages.insert(at, stage);
        TimedPath {
            stages,
            source_drive_ff: self.source_drive_ff,
            terminal_load_ff: self.terminal_load_ff,
            input_transition_ps: self.input_transition_ps,
            input_edge: self.input_edge,
        }
    }

    /// Replace the cell (and off-path load) of stage `at`. Used by the
    /// De Morgan restructuring step.
    ///
    /// # Panics
    ///
    /// Panics if `at >= len()`.
    pub fn with_stage_replaced(&self, at: usize, stage: PathStage) -> TimedPath {
        assert!(at < self.stages.len());
        let mut stages = self.stages.clone();
        stages[at] = stage;
        TimedPath {
            stages,
            source_drive_ff: self.source_drive_ff,
            terminal_load_ff: self.terminal_load_ff,
            input_transition_ps: self.input_transition_ps,
            input_edge: self.input_edge,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> Library {
        Library::cmos025()
    }

    fn inv_chain(n: usize, terminal: f64) -> TimedPath {
        TimedPath::new(
            vec![PathStage::new(CellKind::Inv); n],
            Library::cmos025().min_drive_ff(),
            terminal,
        )
    }

    #[test]
    fn delay_is_sum_of_stage_delays() {
        let lib = lib();
        let p = inv_chain(5, 30.0);
        let sizes = p.min_sizes(&lib);
        let d = p.delay(&lib, &sizes);
        let sum: f64 = d.stages.iter().map(|s| s.delay_ps).sum();
        assert!((d.total_ps - sum).abs() < 1e-9);
    }

    #[test]
    fn edges_alternate_through_inverters() {
        let lib = lib();
        let p = inv_chain(4, 30.0);
        let d = p.delay(&lib, &p.min_sizes(&lib));
        let edges: Vec<Edge> = d.stages.iter().map(|s| s.output_edge).collect();
        assert_eq!(
            edges,
            vec![Edge::Falling, Edge::Rising, Edge::Falling, Edge::Rising]
        );
    }

    #[test]
    fn upsizing_an_interior_gate_reduces_total_delay_under_heavy_load() {
        let lib = lib();
        let p = inv_chain(3, 200.0);
        let sizes = p.min_sizes(&lib);
        let base = p.delay(&lib, &sizes).total_ps;
        let mut bigger = sizes.clone();
        bigger[2] *= 3.0;
        assert!(p.delay(&lib, &bigger).total_ps < base);
    }

    #[test]
    fn gradient_matches_finite_difference_of_delay() {
        let lib = lib();
        let p = inv_chain(4, 100.0);
        let mut sizes = p.min_sizes(&lib);
        sizes[1] = 6.0;
        sizes[2] = 9.0;
        sizes[3] = 14.0;
        let grad = p.gradient(&lib, &sizes);
        // Re-derive with a coarser step and compare signs & magnitude.
        for i in 1..4 {
            let h = 0.01;
            let mut up = sizes.clone();
            up[i] += h;
            let mut dn = sizes.clone();
            dn[i] -= h;
            let fd = (p.delay(&lib, &up).total_ps - p.delay(&lib, &dn).total_ps) / (2.0 * h);
            assert!(
                (fd - grad[i]).abs() < 1e-2 * (1.0 + fd.abs()),
                "stage {i}: {fd} vs {}",
                grad[i]
            );
        }
    }

    #[test]
    fn path_delay_is_convex_along_a_size_axis() {
        // Sample T(cin_2) at increasing sizes: the sequence of second
        // differences must be non-negative (discrete convexity).
        let lib = lib();
        let p = inv_chain(4, 150.0);
        let mut sizes = p.min_sizes(&lib);
        let xs: Vec<f64> = (1..40).map(|i| 2.0 + i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&c| {
                sizes[2] = c;
                p.delay(&lib, &sizes).total_ps
            })
            .collect();
        for w in ys.windows(3) {
            let second = w[2] - 2.0 * w[1] + w[0];
            assert!(second > -1e-6, "second difference {second}");
        }
    }

    #[test]
    fn stage_insertion_shifts_loads() {
        let lib = lib();
        let p = inv_chain(3, 60.0);
        let q = p.with_stage_inserted(2, PathStage::new(CellKind::Inv));
        assert_eq!(q.len(), 4);
        let sizes = q.min_sizes(&lib);
        // Stage 1 now drives the inserted stage's cin instead of stage 2's.
        assert!((q.stage_load_ff(1, &sizes) - sizes[2]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "latch-bounded")]
    fn cannot_insert_before_input_gate() {
        let p = inv_chain(3, 60.0);
        let _ = p.with_stage_inserted(0, PathStage::new(CellKind::Inv));
    }

    #[test]
    fn stage_replacement_changes_cell() {
        let p = inv_chain(3, 60.0);
        let q = p.with_stage_replaced(1, PathStage::new(CellKind::Nand2));
        assert_eq!(q.stages()[1].cell, CellKind::Nand2);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn worst_case_covers_both_edges() {
        let lib = lib();
        let p = inv_chain(3, 60.0);
        let sizes = p.min_sizes(&lib);
        let worst = p.delay_worst(&lib, &sizes);
        let rising = p
            .clone()
            .with_input_conditions(Edge::Rising, p.input_transition_ps())
            .delay(&lib, &sizes)
            .total_ps;
        let falling = p
            .clone()
            .with_input_conditions(Edge::Falling, p.input_transition_ps())
            .delay(&lib, &sizes)
            .total_ps;
        assert!((worst - rising.max(falling)).abs() < 1e-9);
    }

    #[test]
    fn off_path_load_slows_the_stage() {
        let lib = lib();
        let light = TimedPath::new(
            vec![PathStage::new(CellKind::Inv), PathStage::new(CellKind::Inv)],
            2.7,
            30.0,
        );
        let heavy = TimedPath::new(
            vec![
                PathStage::with_load(CellKind::Inv, 40.0),
                PathStage::new(CellKind::Inv),
            ],
            2.7,
            30.0,
        );
        let sizes = light.min_sizes(&lib);
        assert!(heavy.delay(&lib, &sizes).total_ps > light.delay(&lib, &sizes).total_ps);
    }

    #[test]
    fn area_is_proportional_to_total_cin() {
        let lib = lib();
        let p = inv_chain(3, 60.0);
        let sizes = vec![2.7, 5.4, 10.8];
        let area = p.area_um(&lib, &sizes);
        let expect = (2.7 + 5.4 + 10.8) / lib.process().cg_per_um;
        assert!((area - expect).abs() < 1e-12);
    }
}
