//! Property tests on the closed-form model itself: physicality and
//! monotonicity over the whole input domain.
//!
//! Randomized with the in-tree deterministic [`SplitMix64`] generator
//! (the workspace builds offline, so no external property-testing
//! framework): each property is checked over 256 seeded random cases.

use pops_delay::model::{gate_delay, Edge};
use pops_delay::Library;
use pops_netlist::cell::ALL_CELLS;
use pops_netlist::rng::SplitMix64;
use pops_netlist::CellKind;

const CASES: usize = 256;

fn cell(rng: &mut SplitMix64) -> CellKind {
    *rng.pick(&ALL_CELLS)
}

fn edge(rng: &mut SplitMix64) -> Edge {
    if rng.chance(0.5) {
        Edge::Rising
    } else {
        Edge::Falling
    }
}

#[test]
fn delay_and_transition_are_positive_and_finite() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x01);
    for _ in 0..CASES {
        let c = cell(&mut rng);
        let cin = rng.uniform(0.5, 500.0);
        let cl = rng.uniform(0.0, 5000.0);
        let tau_in = rng.uniform(0.0, 2000.0);
        let e = edge(&mut rng);
        let d = gate_delay(&lib, c, cin, cl, tau_in, e);
        assert!(d.delay_ps.is_finite());
        assert!(d.delay_ps > 0.0, "{c:?} cin={cin} cl={cl}");
        assert!(d.output_transition_ps.is_finite());
        assert!(d.output_transition_ps > 0.0);
    }
}

#[test]
fn delay_is_monotone_in_load() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x02);
    for _ in 0..CASES {
        let c = cell(&mut rng);
        let cin = rng.uniform(1.0, 100.0);
        let cl = rng.uniform(1.0, 1000.0);
        let extra = rng.uniform(0.1, 1000.0);
        let tau_in = rng.uniform(0.0, 500.0);
        let e = edge(&mut rng);
        let d1 = gate_delay(&lib, c, cin, cl, tau_in, e);
        let d2 = gate_delay(&lib, c, cin, cl + extra, tau_in, e);
        assert!(d2.delay_ps > d1.delay_ps);
        assert!(d2.output_transition_ps > d1.output_transition_ps);
    }
}

#[test]
fn delay_is_monotone_in_input_transition() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x03);
    for _ in 0..CASES {
        let c = cell(&mut rng);
        let cin = rng.uniform(1.0, 100.0);
        let cl = rng.uniform(1.0, 500.0);
        let tau_in = rng.uniform(0.0, 500.0);
        let extra = rng.uniform(1.0, 500.0);
        let e = edge(&mut rng);
        let d1 = gate_delay(&lib, c, cin, cl, tau_in, e);
        let d2 = gate_delay(&lib, c, cin, cl, tau_in + extra, e);
        assert!(d2.delay_ps > d1.delay_ps);
        // The slope term does not touch the output transition.
        assert!((d2.output_transition_ps - d1.output_transition_ps).abs() < 1e-12);
    }
}

#[test]
fn upsizing_at_fixed_load_never_slows_the_transition() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x04);
    for _ in 0..CASES {
        let c = cell(&mut rng);
        let cin = rng.uniform(1.0, 100.0);
        let factor = rng.uniform(1.01, 10.0);
        let cl = rng.uniform(1.0, 1000.0);
        let e = edge(&mut rng);
        let d1 = gate_delay(&lib, c, cin, cl, 50.0, e);
        let d2 = gate_delay(&lib, c, cin * factor, cl, 50.0, e);
        // τ_out = τ·S·(p·c + CL)/c is strictly decreasing in c for CL > 0.
        assert!(d2.output_transition_ps < d1.output_transition_ps);
    }
}

#[test]
fn edge_polarity_is_consistent() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x05);
    for _ in 0..CASES {
        let c = cell(&mut rng);
        let e = edge(&mut rng);
        let d = gate_delay(&lib, c, 5.0, 20.0, 30.0, e);
        let expect = if c.is_inverting() { e.flipped() } else { e };
        assert_eq!(d.output_edge, expect);
    }
}

#[test]
fn transition_scale_invariance() {
    // τ_out depends on cin and CL only through the ratio CL/cin
    // (plus the constant parasitic term): scaling both together
    // leaves the transition unchanged.
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x06);
    for _ in 0..CASES {
        let c = cell(&mut rng);
        let cin = rng.uniform(1.0, 50.0);
        let fanout = rng.uniform(0.5, 20.0);
        let scale = rng.uniform(1.1, 8.0);
        let e = edge(&mut rng);
        let d1 = gate_delay(&lib, c, cin, fanout * cin, 40.0, e);
        let d2 = gate_delay(&lib, c, scale * cin, fanout * scale * cin, 40.0, e);
        assert!(
            (d1.output_transition_ps - d2.output_transition_ps).abs()
                < 1e-9 * d1.output_transition_ps.max(1.0)
        );
    }
}

#[test]
fn weaker_cells_switch_slower_at_equal_size() {
    // Fixed size and load: the NOR3's rising output (3 series PMOS)
    // must be slower than the inverter's.
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x07);
    for _ in 0..CASES {
        let cin = rng.uniform(2.0, 50.0);
        let cl = rng.uniform(5.0, 500.0);
        let inv = gate_delay(&lib, CellKind::Inv, cin, cl, 40.0, Edge::Falling);
        let nor = gate_delay(&lib, CellKind::Nor3, cin, cl, 40.0, Edge::Falling);
        assert_eq!(inv.output_edge, Edge::Rising);
        assert_eq!(nor.output_edge, Edge::Rising);
        assert!(nor.delay_ps > inv.delay_ps);
    }
}
