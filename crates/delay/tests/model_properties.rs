//! Property tests on the closed-form model itself: physicality and
//! monotonicity over the whole input domain.

use proptest::prelude::*;

use pops_delay::model::{gate_delay, Edge};
use pops_delay::Library;
use pops_netlist::cell::ALL_CELLS;
use pops_netlist::CellKind;

fn arb_cell() -> impl Strategy<Value = CellKind> {
    prop::sample::select(ALL_CELLS.to_vec())
}

fn arb_edge() -> impl Strategy<Value = Edge> {
    prop_oneof![Just(Edge::Rising), Just(Edge::Falling)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn delay_and_transition_are_positive_and_finite(
        cell in arb_cell(),
        cin in 0.5f64..500.0,
        cl in 0.0f64..5000.0,
        tau_in in 0.0f64..2000.0,
        edge in arb_edge(),
    ) {
        let lib = Library::cmos025();
        let d = gate_delay(&lib, cell, cin, cl, tau_in, edge);
        prop_assert!(d.delay_ps.is_finite());
        prop_assert!(d.delay_ps > 0.0);
        prop_assert!(d.output_transition_ps.is_finite());
        prop_assert!(d.output_transition_ps > 0.0);
    }

    #[test]
    fn delay_is_monotone_in_load(
        cell in arb_cell(),
        cin in 1.0f64..100.0,
        cl in 1.0f64..1000.0,
        extra in 0.1f64..1000.0,
        tau_in in 0.0f64..500.0,
        edge in arb_edge(),
    ) {
        let lib = Library::cmos025();
        let d1 = gate_delay(&lib, cell, cin, cl, tau_in, edge);
        let d2 = gate_delay(&lib, cell, cin, cl + extra, tau_in, edge);
        prop_assert!(d2.delay_ps > d1.delay_ps);
        prop_assert!(d2.output_transition_ps > d1.output_transition_ps);
    }

    #[test]
    fn delay_is_monotone_in_input_transition(
        cell in arb_cell(),
        cin in 1.0f64..100.0,
        cl in 1.0f64..500.0,
        tau_in in 0.0f64..500.0,
        extra in 1.0f64..500.0,
        edge in arb_edge(),
    ) {
        let lib = Library::cmos025();
        let d1 = gate_delay(&lib, cell, cin, cl, tau_in, edge);
        let d2 = gate_delay(&lib, cell, cin, cl, tau_in + extra, edge);
        prop_assert!(d2.delay_ps > d1.delay_ps);
        // The slope term does not touch the output transition.
        prop_assert!((d2.output_transition_ps - d1.output_transition_ps).abs() < 1e-12);
    }

    #[test]
    fn upsizing_at_fixed_load_never_slows_the_transition(
        cell in arb_cell(),
        cin in 1.0f64..100.0,
        factor in 1.01f64..10.0,
        cl in 1.0f64..1000.0,
        edge in arb_edge(),
    ) {
        let lib = Library::cmos025();
        let d1 = gate_delay(&lib, cell, cin, cl, 50.0, edge);
        let d2 = gate_delay(&lib, cell, cin * factor, cl, 50.0, edge);
        // τ_out = τ·S·(p·c + CL)/c is strictly decreasing in c for CL > 0.
        prop_assert!(d2.output_transition_ps < d1.output_transition_ps);
    }

    #[test]
    fn edge_polarity_is_consistent(
        cell in arb_cell(),
        edge in arb_edge(),
    ) {
        let lib = Library::cmos025();
        let d = gate_delay(&lib, cell, 5.0, 20.0, 30.0, edge);
        let expect = if cell.is_inverting() { edge.flipped() } else { edge };
        prop_assert_eq!(d.output_edge, expect);
    }

    #[test]
    fn transition_scale_invariance(
        cell in arb_cell(),
        cin in 1.0f64..50.0,
        fanout in 0.5f64..20.0,
        scale in 1.1f64..8.0,
        edge in arb_edge(),
    ) {
        // τ_out depends on cin and CL only through the ratio CL/cin
        // (plus the constant parasitic term): scaling both together
        // leaves the transition unchanged.
        let lib = Library::cmos025();
        let d1 = gate_delay(&lib, cell, cin, fanout * cin, 40.0, edge);
        let d2 = gate_delay(&lib, cell, scale * cin, fanout * scale * cin, 40.0, edge);
        prop_assert!(
            (d1.output_transition_ps - d2.output_transition_ps).abs()
                < 1e-9 * d1.output_transition_ps.max(1.0)
        );
    }

    #[test]
    fn weaker_cells_switch_slower_at_equal_size(
        cin in 2.0f64..50.0,
        cl in 5.0f64..500.0,
    ) {
        // Fixed size and load: the NOR3's rising output (3 series PMOS)
        // must be slower than the inverter's.
        let lib = Library::cmos025();
        let inv = gate_delay(&lib, CellKind::Inv, cin, cl, 40.0, Edge::Falling);
        let nor = gate_delay(&lib, CellKind::Nor3, cin, cl, 40.0, Edge::Falling);
        prop_assert_eq!(inv.output_edge, Edge::Rising);
        prop_assert_eq!(nor.output_edge, Edge::Rising);
        prop_assert!(nor.delay_ps > inv.delay_ps);
    }
}
