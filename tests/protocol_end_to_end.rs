//! Integration: the full netlist → STA → extraction → protocol pipeline
//! on the benchmark suite (the paper's Fig. 7 flow, end to end).

use pops::prelude::*;

fn extract(name: &str, lib: &Library) -> TimedPath {
    let circuit = pops::netlist::suite::circuit(name).expect("known circuit");
    let sizing = Sizing::minimum(&circuit, lib);
    let report = analyze(&circuit, lib, &sizing).expect("acyclic");
    let path = report.critical_path();
    extract_timed_path(&circuit, lib, &sizing, &path, &ExtractOptions::default()).timed
}

#[test]
fn every_circuit_optimizes_in_every_domain() {
    let lib = Library::cmos025();
    for name in ["fpd", "c432", "c880", "c1355"] {
        let path = extract(name, &lib);
        let bounds = delay_bounds(&lib, &path);
        assert!(bounds.tmin_ps < bounds.tmax_ps, "{name}");
        for factor in [1.05, 1.3, 2.0, 3.0] {
            let tc = factor * bounds.tmin_ps;
            let out = optimize(&lib, &path, tc, &ProtocolOptions::default())
                .unwrap_or_else(|e| panic!("{name} @ {factor}: {e}"));
            assert!(
                out.delay_ps <= tc * 1.001,
                "{name} @ {factor}: {} > {tc}",
                out.delay_ps
            );
            assert!(out.total_cin_ff > 0.0);
        }
    }
}

#[test]
fn area_is_monotone_in_the_constraint() {
    // Relaxing the constraint must never cost more area (the protocol
    // picks the min-area candidate).
    let lib = Library::cmos025();
    let path = extract("c432", &lib);
    let bounds = delay_bounds(&lib, &path);
    let mut last = f64::INFINITY;
    for factor in [1.05, 1.2, 1.5, 2.0, 2.6, 3.2] {
        let out = optimize(
            &lib,
            &path,
            factor * bounds.tmin_ps,
            &ProtocolOptions::default(),
        )
        .expect("feasible");
        assert!(
            out.total_cin_ff <= last * 1.001,
            "area went up when relaxing: {} -> {}",
            last,
            out.total_cin_ff
        );
        last = out.total_cin_ff;
    }
}

#[test]
fn protocol_dominates_every_single_technique() {
    // The protocol returns the min-area candidate, so it can never lose
    // to sizing-only on area (when sizing-only is feasible).
    let lib = Library::cmos025();
    let path = extract("c880", &lib);
    let bounds = delay_bounds(&lib, &path);
    for factor in [1.1, 1.6, 2.4] {
        let tc = factor * bounds.tmin_ps;
        let full = optimize(&lib, &path, tc, &ProtocolOptions::default()).expect("feasible");
        let sizing_only = distribute_constraint(&lib, &path, tc).expect("feasible");
        assert!(
            full.total_cin_ff <= sizing_only.total_cin_ff * 1.001,
            "@{factor}: protocol {} vs sizing {}",
            full.total_cin_ff,
            sizing_only.total_cin_ff
        );
    }
}

#[test]
fn sub_tmin_constraints_use_structure_modification_or_fail_cleanly() {
    let lib = Library::cmos025();
    for name in ["c432", "c1355"] {
        let path = extract(name, &lib);
        let bounds = delay_bounds(&lib, &path);
        match optimize(
            &lib,
            &path,
            0.95 * bounds.tmin_ps,
            &ProtocolOptions::default(),
        ) {
            Ok(out) => {
                assert!(
                    out.inserted_buffers > 0 || out.restructured_gates > 0,
                    "{name}: sub-Tmin success must modify the structure"
                );
                assert!(out.delay_ps <= 0.95 * bounds.tmin_ps * 1.001);
            }
            Err(OptimizeError::Infeasible { tmin_ps, .. }) => {
                assert!(tmin_ps <= bounds.tmin_ps * 1.001);
            }
            Err(other) => panic!("{name}: unexpected error {other}"),
        }
    }
}

#[test]
fn outcome_delay_is_reproducible_from_the_returned_sizing() {
    let lib = Library::cmos025();
    let path = extract("fpd", &lib);
    let bounds = delay_bounds(&lib, &path);
    let out = optimize(
        &lib,
        &path,
        1.4 * bounds.tmin_ps,
        &ProtocolOptions::default(),
    )
    .expect("feasible");
    let recheck = out.path.delay(&lib, &out.sizes).total_ps;
    assert!((recheck - out.delay_ps).abs() < 1e-6);
}
