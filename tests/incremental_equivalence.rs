//! Randomized equivalence: the incremental [`TimingGraph`] must match a
//! from-scratch `analyze()` after **every** step of a random resize
//! sequence — arrivals, slopes, loads, per-gate worst delays, critical
//! delay and the reconstructed critical path.
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::rng::SplitMix64;
use pops::prelude::*;
use pops::sta::analysis::{analyze_with, AnalyzeOptions, EdgeDir};
use pops::sta::TimingGraph;

const STEPS_PER_CIRCUIT: usize = 50;

fn assert_equivalent(graph: &TimingGraph, circuit: &Circuit, lib: &Library, step: usize) {
    let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options())
        .expect("suite circuits are valid");
    let name = circuit.name();
    assert!(
        (graph.critical_delay_ps() - fresh.critical_delay_ps()).abs() <= 1e-9,
        "{name} step {step}: critical {} vs {}",
        graph.critical_delay_ps(),
        fresh.critical_delay_ps()
    );
    for net in circuit.net_ids() {
        assert!(
            (graph.net_load_ff(net) - fresh.net_load_ff(net)).abs() <= 1e-9,
            "{name} step {step}: load of {net}"
        );
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            let (a, b) = (graph.arrival_ps(net, dir), fresh.arrival_ps(net, dir));
            assert!(
                a == b || (a - b).abs() <= 1e-9,
                "{name} step {step}: arrival of {net} {dir:?}: {a} vs {b}"
            );
            let (a, b) = (graph.slope_ps(net, dir), fresh.slope_ps(net, dir));
            assert!(
                a == b || (a - b).abs() <= 1e-9,
                "{name} step {step}: slope of {net} {dir:?}: {a} vs {b}"
            );
        }
    }
    for g in circuit.gate_ids() {
        assert!(
            (graph.gate_delay_worst_ps(g) - fresh.gate_delay_worst_ps(g)).abs() <= 1e-9,
            "{name} step {step}: worst delay of {g}"
        );
    }
    // Critical-path reconstruction must agree gate-for-gate.
    assert_eq!(
        graph.critical_path().gates,
        fresh.critical_path().gates,
        "{name} step {step}: critical path diverged"
    );
}

fn random_resize_sequence(name: &str, seed: u64) {
    let lib = Library::cmos025();
    let circuit = suite::circuit(name).expect("suite circuit exists");
    let mut rng = SplitMix64::new(seed);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib))
        .expect("suite circuits are acyclic");
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();

    for step in 0..STEPS_PER_CIRCUIT {
        // Mix single resizes with occasional small batches (the flow's
        // write-back pattern) and occasional shrink-back-to-minimum.
        match rng.below(4) {
            0 => {
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(6))
                    .map(|_| {
                        let g = *rng.pick(&gates);
                        (g, cref * (1.0 + 30.0 * rng.next_f64()))
                    })
                    .collect();
                graph.resize_gates(batch);
            }
            1 => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref);
            }
            _ => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref * (1.0 + 30.0 * rng.next_f64()));
            }
        }
        assert_equivalent(&graph, &circuit, &lib, step);
    }

    // After the whole sequence the K-paths ranking through the
    // incremental view agrees with the one through a fresh report.
    let fresh = analyze_with(&circuit, &lib, graph.sizing(), graph.options()).unwrap();
    let via_graph = k_most_critical_paths(&circuit, &graph, 8);
    let via_fresh = k_most_critical_paths(&circuit, &fresh, 8);
    assert_eq!(via_graph.len(), via_fresh.len());
    for (a, b) in via_graph.iter().zip(&via_fresh) {
        assert_eq!(a.gates, b.gates, "{name}: k-paths diverged");
    }
}

#[test]
fn fpd_random_resizes_match_full_analysis() {
    random_resize_sequence("fpd", 0xF00D);
}

#[test]
fn c432_random_resizes_match_full_analysis() {
    random_resize_sequence("c432", 0x432);
}

#[test]
fn c880_random_resizes_match_full_analysis() {
    random_resize_sequence("c880", 0x880);
}

#[test]
fn option_changes_interleaved_with_resizes_match() {
    let lib = Library::cmos025();
    let circuit = suite::circuit("fpd").unwrap();
    let mut rng = SplitMix64::new(0x0971);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();
    for step in 0..20 {
        if step % 5 == 4 {
            graph.set_options(&AnalyzeOptions {
                po_load_ff: 5.0 + 40.0 * rng.next_f64(),
                input_transition_ps: 20.0 + 100.0 * rng.next_f64(),
            });
        } else {
            let g = *rng.pick(&gates);
            graph.resize_gate(g, cref * (1.0 + 20.0 * rng.next_f64()));
        }
        assert_equivalent(&graph, &circuit, &lib, step);
    }
}

#[test]
fn incremental_work_is_a_fraction_of_full_reanalysis() {
    // The point of the engine: over a long random sequence the average
    // re-evaluated cone must be well below the circuit size.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let mut rng = SplitMix64::new(0x57A7);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();
    let steps = 200;
    for _ in 0..steps {
        let g = *rng.pick(&gates);
        graph.resize_gate(g, cref * (1.0 + 10.0 * rng.next_f64()));
        // Force the (lazy) per-step flush: this test measures the
        // per-mutation cone economics, not the merged-flush dedup
        // (which `tests/forward_lazy_equivalence.rs` covers).
        let _ = graph.critical_delay_ps();
    }
    let full_equivalent = steps * circuit.gate_count();
    let actual = graph.stats().gates_reevaluated;
    assert!(
        actual * 2 < full_equivalent,
        "incremental {actual} vs full-reanalysis {full_equivalent}"
    );
}
