//! Shadow-access race auditor: armed parallel flushes are hazard-free
//! and bit-identical, and seeded phantom overlaps demonstrably fire.
//!
//! The auditor (`pops::sta::audit`) shadows every `SyncCell` access of
//! the six parallel flush bodies into per-worker logs and verifies at
//! each level barrier that (1) same-level write-sets are pairwise
//! disjoint, (2) reads never alias another worker's same-level writes,
//! and (3) cross-level reads only touch slots finalized at strictly
//! lower levels (forward) / strictly higher levels (backward), with the
//! corner stride `slot·C + c` decoded and bounds-checked first. The
//! contracts proven here:
//!
//! * **positive** — audited 2- and 4-thread twins stay bit-identical to
//!   a clean sequential twin through mutation bursts on all six suite
//!   circuits and the synth10k fabric, forward and backward, with zero
//!   hazards and a nonzero number of checked levels (the auditor
//!   demonstrably ran);
//! * **corners** — the same holds for a 3-corner fused graph, so the
//!   stride math is exercised with `C > 1`;
//! * **negative** — a seeded [`OverlapPlan`] injecting phantom log
//!   records (write-write, read-write, cross-level, forward and
//!   backward) makes the auditor surface typed
//!   [`StaError::RaceHazard`]s of exactly the provoked kind, while the
//!   graph's answers stay bit-identical (phantoms live only in the
//!   shadow log);
//! * **disarmed** — an unaudited graph records no audit activity at
//!   all.
//!
//! The audit session is process-global, so every test serializes on one
//! lock and disarms via an RAII guard (panic-safe).

use std::sync::{Mutex, MutexGuard};

use pops::netlist::rng::SplitMix64;
use pops::netlist::suite;
use pops::prelude::*;
use pops::sta::analysis::{AnalyzeOptions, EdgeDir};
use pops::sta::audit::{self, OverlapPlan};
use pops::sta::{RaceKind, StaError, TimingGraph};

/// Audit state is process-global: tests in this binary serialize on this
/// lock so one test's armed plan never bleeds into another's graphs.
static AUDIT_LOCK: Mutex<()> = Mutex::new(());

fn audit_lock() -> MutexGuard<'static, ()> {
    AUDIT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms the auditor and drains leftover hazards when dropped, even on
/// panic.
struct AuditGuard;

impl AuditGuard {
    fn new() -> Self {
        audit::take_hazards();
        AuditGuard
    }
}

impl Drop for AuditGuard {
    fn drop(&mut self) {
        audit::disarm();
        audit::take_hazards();
    }
}

/// Every queryable value of `a` and `b` is bit-identical.
fn assert_graphs_bit_equal(a: &TimingGraph, b: &TimingGraph, label: &str) {
    let circuit = a.circuit();
    assert_eq!(
        a.critical_delay_ps().to_bits(),
        b.critical_delay_ps().to_bits(),
        "{label}: critical delay diverged"
    );
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                a.arrival_ps(net, dir).to_bits(),
                b.arrival_ps(net, dir).to_bits(),
                "{label}: arrival of {net} {dir:?}"
            );
            assert_eq!(
                a.slack_ps(net, dir).to_bits(),
                b.slack_ps(net, dir).to_bits(),
                "{label}: slack of {net} {dir:?}"
            );
        }
    }
    for g in circuit.gate_ids() {
        assert_eq!(
            a.completion_ps(g).to_bits(),
            b.completion_ps(g).to_bits(),
            "{label}: completion bound of {g}"
        );
    }
    assert_eq!(
        a.worst_slack_overall_ps().map(f64::to_bits),
        b.worst_slack_overall_ps().map(f64::to_bits),
        "{label}: design-worst slack diverged"
    );
}

/// The positive driver: a clean sequential twin (threads 1, unaudited)
/// against audited forced-parallel twins at 2 and 4 threads, driven
/// through identical mutation bursts with flush-forcing queries after
/// every burst (forward drains, both backward drains, and — via the
/// final option change — the full forward and backward sweeps). The
/// audited twins must stay bit-identical, check a nonzero number of
/// levels, and record zero hazards.
fn audited_twin_sequence(circuit: Circuit, seed: u64, steps: usize) {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let hazards_before = audit::hazards_recorded();

    let lib = Library::cmos025();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut clean = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
    clean.set_threads(1);
    let t0 = clean.critical_delay_ps();
    clean.set_constraint(0.9 * t0);

    let mut twins: Vec<TimingGraph> = [2usize, 4]
        .iter()
        .map(|&t| {
            let mut g = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            g.set_threads(t);
            g.set_parallel_threshold(0);
            g.set_audit(true);
            g.set_constraint(0.9 * t0);
            g
        })
        .collect();

    let mut rng = SplitMix64::new(seed);
    let cref = lib.min_drive_ff();
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    for step in 0..steps {
        match rng.below(4) {
            0 => {
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(8))
                    .map(|_| (*rng.pick(&gates), cref * (1.0 + 25.0 * rng.next_f64())))
                    .collect();
                clean.resize_gates(batch.clone());
                for g in &mut twins {
                    g.resize_gates(batch.clone());
                }
            }
            1 => {
                let tc = t0 * (0.7 + 0.6 * rng.next_f64());
                clean.set_constraint(tc);
                for g in &mut twins {
                    g.set_constraint(tc);
                }
            }
            _ => {
                let g = *rng.pick(&gates);
                let cin = cref * (1.0 + 25.0 * rng.next_f64());
                clean.resize_gate(g, cin);
                for t in &mut twins {
                    t.resize_gate(g, cin);
                }
            }
        }
        // Force the forward drain and both backward drains on every
        // audited twin and pin the answers to the clean twin's bits.
        let delay = clean.critical_delay_ps().to_bits();
        let worst = clean.worst_slack_overall_ps().map(f64::to_bits);
        let probe = *rng.pick(&gates);
        let completion = clean.completion_ps(probe).to_bits();
        for (i, g) in twins.iter().enumerate() {
            assert_eq!(
                g.critical_delay_ps().to_bits(),
                delay,
                "step {step}, twin {i}: critical delay diverged under audit"
            );
            assert_eq!(
                g.worst_slack_overall_ps().map(f64::to_bits),
                worst,
                "step {step}, twin {i}: design-worst slack diverged under audit"
            );
            assert_eq!(
                g.completion_ps(probe).to_bits(),
                completion,
                "step {step}, twin {i}: completion of {probe} diverged under audit"
            );
        }
    }

    // An option change forces the full-rescan forward sweep and the full
    // backward sweeps — the widest shadow-log cross-section.
    let options = AnalyzeOptions {
        po_load_ff: 42.0,
        input_transition_ps: 77.0,
    };
    clean.set_options(&options);
    let delay = clean.critical_delay_ps().to_bits();
    let worst = clean.worst_slack_overall_ps().map(f64::to_bits);
    for (i, g) in twins.iter_mut().enumerate() {
        g.set_options(&options);
        assert_eq!(
            g.critical_delay_ps().to_bits(),
            delay,
            "twin {i}: critical delay diverged through the audited full rescan"
        );
        assert_eq!(
            g.worst_slack_overall_ps().map(f64::to_bits),
            worst,
            "twin {i}: design-worst slack diverged through the audited full rescan"
        );
    }

    // The auditor demonstrably ran on every audited twin, found nothing,
    // and the clean twin was never audited.
    for (i, g) in twins.iter().enumerate() {
        let stats = g.stats();
        assert!(
            stats.audit_levels_checked > 0,
            "twin {i}: the auditor never checked a level"
        );
        assert_eq!(stats.audit_hazards, 0, "twin {i}: hazards on clean code");
    }
    assert_eq!(clean.stats().audit_levels_checked, 0);
    assert_eq!(
        audit::hazards_recorded(),
        hazards_before,
        "clean parallel flushes must not record hazards"
    );
    assert!(audit::take_hazards().is_empty());

    for (i, g) in twins.iter().enumerate() {
        assert_graphs_bit_equal(&clean, g, &format!("final, twin {i}"));
        g.verify_state()
            .unwrap_or_else(|e| panic!("twin {i} failed the deep audit: {e}"));
    }
}

#[test]
fn fpd_audited_flushes_are_hazard_free_and_bit_identical() {
    audited_twin_sequence(suite::circuit("fpd").unwrap(), 0xA0D1_F00D, 12);
}

#[test]
fn c432_audited_flushes_are_hazard_free_and_bit_identical() {
    audited_twin_sequence(suite::circuit("c432").unwrap(), 0xA0D1_0432, 12);
}

#[test]
fn c880_audited_flushes_are_hazard_free_and_bit_identical() {
    audited_twin_sequence(suite::circuit("c880").unwrap(), 0xA0D1_0880, 10);
}

#[test]
fn c1908_audited_flushes_are_hazard_free_and_bit_identical() {
    audited_twin_sequence(suite::circuit("c1908").unwrap(), 0xA0D1_1908, 10);
}

#[test]
fn c6288_audited_flushes_are_hazard_free_and_bit_identical() {
    audited_twin_sequence(suite::circuit("c6288").unwrap(), 0xA0D1_6288, 6);
}

#[test]
fn c7552_audited_flushes_are_hazard_free_and_bit_identical() {
    audited_twin_sequence(suite::circuit("c7552").unwrap(), 0xA0D1_7552, 6);
}

#[test]
fn synth10k_audited_flushes_are_hazard_free_and_bit_identical() {
    audited_twin_sequence(suite::scaling_circuit("synth10k").unwrap(), 0xA0D1_E010, 4);
}

/// A 3-corner fused graph exercises the `slot·C + c` stride decode with
/// `C > 1` on both forward and backward slabs.
#[test]
fn three_corner_audited_flushes_are_hazard_free_and_bit_identical() {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let hazards_before = audit::hazards_recorded();

    let circuit = suite::circuit("c880").unwrap();
    let lib = Library::cmos025();
    let sizing = Sizing::minimum(&circuit, &lib);
    let options = AnalyzeOptions::default();
    let set = CornerSet::slow_typical_fast(Process::cmos025());

    let mut clean =
        TimingGraph::with_corners(&circuit, &lib, &sizing, &options, &set).expect("acyclic");
    clean.set_threads(1);
    let t0 = clean.critical_delay_ps();
    clean.set_constraint(0.95 * t0);

    let mut audited =
        TimingGraph::with_corners(&circuit, &lib, &sizing, &options, &set).expect("acyclic");
    audited.set_threads(4);
    audited.set_parallel_threshold(0);
    audited.set_audit(true);
    audited.set_constraint(0.95 * t0);

    let mut rng = SplitMix64::new(0xC0C0_0003);
    let cref = lib.min_drive_ff();
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    for step in 0..8 {
        let g = *rng.pick(&gates);
        let cin = cref * (1.0 + 20.0 * rng.next_f64());
        clean.resize_gate(g, cin);
        audited.resize_gate(g, cin);
        for c in 0..clean.n_corners() {
            assert_eq!(
                clean.critical_delay_ps_corner(c).to_bits(),
                audited.critical_delay_ps_corner(c).to_bits(),
                "step {step}: corner {c} critical delay diverged under audit"
            );
        }
        assert_eq!(
            clean.worst_slack_overall_ps().map(f64::to_bits),
            audited.worst_slack_overall_ps().map(f64::to_bits),
            "step {step}: fused worst slack diverged under audit"
        );
    }

    assert!(audited.stats().audit_levels_checked > 0);
    assert_eq!(audited.stats().audit_hazards, 0);
    assert_eq!(audit::hazards_recorded(), hazards_before);
    audited.verify_state().expect("deep audit");
}

/// The negative driver: an audited forced-parallel graph flushed under a
/// seeded phantom-overlap plan of the given kind. Returns the drained
/// hazards. The phantoms live only in the shadow log, so the graph's
/// answers must still bit-match an untouched twin.
fn provoked_hazards(kind: RaceKind, seed: u64, backward: bool) -> Vec<StaError> {
    let circuit = suite::circuit("c880").unwrap();
    let lib = Library::cmos025();
    let sizing = Sizing::minimum(&circuit, &lib);

    let mut clean = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
    clean.set_threads(1);
    let t0 = clean.critical_delay_ps();
    clean.set_constraint(0.9 * t0);

    let mut graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
    graph.set_threads(4);
    graph.set_parallel_threshold(0);
    graph.set_audit(true);
    graph.set_constraint(0.9 * t0);
    // Settle both graphs before arming so the provoked flush is the
    // interesting one.
    let _ = clean.worst_slack_overall_ps();
    let _ = graph.worst_slack_overall_ps();

    let injected_before = audit::overlaps_injected();
    let hazards_before = audit::hazards_recorded();
    audit::take_hazards();
    OverlapPlan::from_seed(seed, kind).arm();

    // One mutation, then force the targeted direction's drain.
    let gate = circuit.gate_ids().next().expect("non-empty circuit");
    let cin = 4.0 * lib.min_drive_ff();
    clean.resize_gate(gate, cin);
    graph.resize_gate(gate, cin);
    let (c, g) = if backward {
        (
            clean.worst_slack_overall_ps().map(f64::to_bits),
            graph.worst_slack_overall_ps().map(f64::to_bits),
        )
    } else {
        (
            Some(clean.critical_delay_ps().to_bits()),
            Some(graph.critical_delay_ps().to_bits()),
        )
    };
    audit::disarm();

    assert_eq!(c, g, "phantom overlaps must never change real answers");
    assert!(
        audit::overlaps_injected() > injected_before,
        "the plan never injected a phantom — the schedule is broken"
    );
    assert!(
        audit::hazards_recorded() > hazards_before,
        "injected phantoms were not detected"
    );
    assert!(
        graph.stats().audit_hazards > 0,
        "hazards must surface in the flush's UpdateStats"
    );
    // Full-precision cross-check after disarming: the shadow phantoms
    // left no trace in the timing state.
    assert_graphs_bit_equal(&clean, &graph, "after provoked flush");
    audit::take_hazards()
}

/// Drained hazards are all `RaceHazard`s of the provoked kind and name
/// worker, level and slot in their rendering.
fn assert_hazards_are(hazards: &[StaError], kind: RaceKind) {
    assert!(!hazards.is_empty(), "no hazards retained for {kind:?}");
    for h in hazards {
        match h {
            StaError::RaceHazard {
                kind: k,
                worker,
                level,
                slot,
                ..
            } => {
                assert_eq!(*k, kind, "wrong hazard kind: {h}");
                let text = h.to_string();
                for (what, v) in [("worker", worker), ("level", level), ("slot", slot)] {
                    assert!(
                        text.contains(&format!("{what} {v}")),
                        "hazard must name {what}: {text}"
                    );
                }
            }
            other => panic!("non-race error drained from the auditor: {other}"),
        }
    }
}

#[test]
fn seeded_write_write_overlap_fires_the_detector() {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let hazards = provoked_hazards(RaceKind::WriteWrite, 0x5EED_0001, false);
    assert_hazards_are(&hazards, RaceKind::WriteWrite);
}

#[test]
fn seeded_read_write_overlap_fires_the_detector() {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let hazards = provoked_hazards(RaceKind::ReadWrite, 0x5EED_0002, false);
    assert_hazards_are(&hazards, RaceKind::ReadWrite);
}

#[test]
fn seeded_cross_level_read_fires_the_detector_forward() {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let hazards = provoked_hazards(RaceKind::CrossLevel, 0x5EED_0003, false);
    assert_hazards_are(&hazards, RaceKind::CrossLevel);
}

#[test]
fn seeded_cross_level_read_fires_the_detector_backward() {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let hazards = provoked_hazards(RaceKind::CrossLevel, 0x5EED_0004, true);
    assert_hazards_are(&hazards, RaceKind::CrossLevel);
}

#[test]
fn seeded_write_write_overlap_fires_in_the_backward_drains() {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let hazards = provoked_hazards(RaceKind::WriteWrite, 0x5EED_0005, true);
    assert_hazards_are(&hazards, RaceKind::WriteWrite);
}

/// An unaudited graph records no audit activity: zero levels checked,
/// zero hazards, and the process-global counters untouched.
#[test]
fn disarmed_graphs_record_no_audit_activity() {
    let _lock = audit_lock();
    let _guard = AuditGuard::new();
    let injected_before = audit::overlaps_injected();
    let hazards_before = audit::hazards_recorded();

    let circuit = suite::circuit("c432").unwrap();
    let lib = Library::cmos025();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut graph = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
    graph.set_threads(4);
    graph.set_parallel_threshold(0);
    assert!(!graph.audit_enabled());
    let t0 = graph.critical_delay_ps();
    graph.set_constraint(0.9 * t0);
    let gate = circuit.gate_ids().next().expect("non-empty circuit");
    graph.resize_gate(gate, 3.0 * lib.min_drive_ff());
    let _ = graph.critical_delay_ps();
    let _ = graph.worst_slack_overall_ps();

    let stats = graph.stats();
    assert_eq!(stats.audit_levels_checked, 0);
    assert_eq!(stats.audit_hazards, 0);
    assert_eq!(audit::overlaps_injected(), injected_before);
    assert_eq!(audit::hazards_recorded(), hazards_before);
    assert!(audit::take_hazards().is_empty());
}
