//! Regression pins: the deterministic suite + deterministic solvers must
//! keep producing the same headline numbers. These guard against silent
//! drift in the generator, the delay model or the optimizers.
//!
//! Bands are ±5 % around values measured at repository creation; a
//! legitimate model change that moves them should update this file
//! consciously (they are this repo's "golden" results).

use pops::core::bounds::delay_bounds;
use pops::prelude::*;

fn extract(name: &str, lib: &Library) -> TimedPath {
    let circuit = pops::netlist::suite::circuit(name).expect("known circuit");
    let sizing = Sizing::minimum(&circuit, lib);
    let report = analyze(&circuit, lib, &sizing).expect("acyclic");
    let path = report.critical_path();
    extract_timed_path(&circuit, lib, &sizing, &path, &ExtractOptions::default()).timed
}

/// (circuit, Tmin in ps) measured at repo creation.
const TMIN_GOLDEN: &[(&str, f64)] = &[
    ("adder16", 5514.0),
    ("c432", 2071.0),
    ("c499", 2249.0),
    ("c880", 2512.0),
    ("c1355", 2372.0),
    ("c1908", 3162.0),
    ("c3540", 4790.0),
    ("c5315", 5538.0),
    ("c6288", 7137.0),
    ("c7552", 6079.0),
];

#[test]
fn tmin_values_stay_pinned() {
    let lib = Library::cmos025();
    for &(name, golden) in TMIN_GOLDEN {
        let path = extract(name, &lib);
        let b = delay_bounds(&lib, &path);
        let rel = (b.tmin_ps - golden).abs() / golden;
        assert!(
            rel < 0.05,
            "{name}: Tmin {} vs golden {golden} (drift {:.1}%)",
            b.tmin_ps,
            rel * 100.0
        );
    }
}

#[test]
fn suite_path_lengths_stay_pinned() {
    // Table 1's "gate nb" column is a hard structural invariant of the
    // generator (the spine construction guarantees it).
    let lib = Library::cmos025();
    let expected = [
        ("adder16", 99),
        ("fpd", 14),
        ("c432", 29),
        ("c499", 29),
        ("c880", 28),
        ("c1355", 30),
        ("c1908", 44),
        ("c3540", 58),
        ("c5315", 60),
        ("c6288", 116),
        ("c7552", 47),
    ];
    for (name, gates) in expected {
        let path = extract(name, &lib);
        assert!(
            path.len() >= gates - 1 && path.len() <= gates,
            "{name}: extracted {} stages, expected ~{gates}",
            path.len()
        );
    }
}

#[test]
fn flimit_table_stays_pinned() {
    let lib = Library::cmos025();
    let golden = [
        (CellKind::Inv, 7.1),
        (CellKind::Nand2, 6.7),
        (CellKind::Nand3, 4.9),
        (CellKind::Nor2, 4.0),
        (CellKind::Nor3, 3.1),
    ];
    for (gate, value) in golden {
        let f = flimit(&lib, CellKind::Inv, gate).expect("crossover exists");
        let rel = (f - value).abs() / value;
        assert!(rel < 0.05, "{gate}: Flimit {f} vs golden {value}");
    }
}

#[test]
fn eleven_gate_tmin_stays_pinned() {
    // Fig. 1/3's 666.5 ps anchor.
    use pops::netlist::CellKind::*;
    let lib = Library::cmos025();
    let path = TimedPath::new(
        vec![
            PathStage::new(Inv),
            PathStage::new(Nand2),
            PathStage::new(Inv),
            PathStage::with_load(Nor2, 5.0),
            PathStage::new(Nand3),
            PathStage::new(Inv),
            PathStage::new(Nor3),
            PathStage::with_load(Nand2, 8.0),
            PathStage::new(Inv),
            PathStage::new(Nor2),
            PathStage::new(Inv),
        ],
        lib.min_drive_ff(),
        90.0,
    );
    let b = delay_bounds(&lib, &path);
    assert!(
        (b.tmin_ps - 666.5).abs() < 0.05 * 666.5,
        "eleven-gate Tmin {}",
        b.tmin_ps
    );
}
