//! Fault-injection twins: the engine under deterministic self-inflicted
//! faults must converge to the **same bits** as a clean twin.
//!
//! The harness (`pops::sta::faultinject`) arms a seed-driven
//! [`FaultPlan`] that panics the parallel-flush coordinator at chosen
//! level dispatches, poisons chosen parallel gate evaluations with NaN
//! loads, and corrupts chosen resize batches. The contracts proven here:
//!
//! * an absorbed worker panic or detected slab poisoning is recovered by
//!   a sequential full re-sweep — every query still bit-matches a clean
//!   sequential twin driven through the identical mutation burst
//!   schedule, on all six suite circuits and the synth10k fabric at 2
//!   and 4 threads;
//! * [`TimingGraph::verify_state`] (the deep-consistency audit) passes
//!   after recovery, and `panic_recoveries` / `sequential_fallbacks`
//!   prove the recovery path actually ran (the clean twin stays at 0);
//! * a corrupted mutation batch is rejected **atomically** at the
//!   `try_*` boundary: typed error out, graph bit-untouched;
//! * the validated boundaries reject out-of-range ids, non-finite
//!   drives/constraints and malformed edit plans with typed
//!   [`StaError`]s, never by corrupting state.
//!
//! Fault injection is process-global, so every test here serializes on
//! one lock and disarms via an RAII guard (panic-safe).

use std::sync::{Mutex, MutexGuard};

use pops::netlist::rng::SplitMix64;
use pops::netlist::surgery::{EditOp, EditPlan};
use pops::netlist::{builders, suite, NetlistError, VtClass};
use pops::prelude::*;
use pops::sta::analysis::{AnalyzeOptions, EdgeDir};
use pops::sta::faultinject::{self, FaultPlan};
use pops::sta::{StaError, TimingGraph};

/// All fault state is process-global: tests in this binary serialize on
/// this lock so one test's armed plan never bleeds into another's graphs.
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn fault_lock() -> MutexGuard<'static, ()> {
    // A previous test panicking with the lock held poisons it; the
    // protected state (disarmed-ness) is restored by ArmGuard's Drop,
    // so the poison itself carries no information.
    FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Disarms fault injection when dropped, even on panic.
struct ArmGuard;

impl ArmGuard {
    fn arm(plan: &FaultPlan) -> Self {
        plan.arm();
        ArmGuard
    }
}

impl Drop for ArmGuard {
    fn drop(&mut self) {
        faultinject::disarm();
    }
}

/// Every queryable value of `a` and `b` is bit-identical.
fn assert_graphs_bit_equal(a: &TimingGraph, b: &TimingGraph, label: &str) {
    let circuit = a.circuit();
    assert_eq!(
        a.critical_delay_ps().to_bits(),
        b.critical_delay_ps().to_bits(),
        "{label}: critical delay diverged"
    );
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                a.arrival_ps(net, dir).to_bits(),
                b.arrival_ps(net, dir).to_bits(),
                "{label}: arrival of {net} {dir:?}"
            );
            assert_eq!(
                a.slope_ps(net, dir).to_bits(),
                b.slope_ps(net, dir).to_bits(),
                "{label}: slope of {net} {dir:?}"
            );
            assert_eq!(
                a.slack_ps(net, dir).to_bits(),
                b.slack_ps(net, dir).to_bits(),
                "{label}: slack of {net} {dir:?}"
            );
        }
        assert_eq!(
            a.net_load_ff(net).to_bits(),
            b.net_load_ff(net).to_bits(),
            "{label}: load of {net}"
        );
    }
    for g in circuit.gate_ids() {
        assert_eq!(
            a.gate_delay_worst_ps(g).to_bits(),
            b.gate_delay_worst_ps(g).to_bits(),
            "{label}: worst delay of {g}"
        );
        assert_eq!(
            a.completion_ps(g).to_bits(),
            b.completion_ps(g).to_bits(),
            "{label}: completion bound of {g}"
        );
    }
    assert_eq!(
        a.worst_slack_overall_ps().map(f64::to_bits),
        b.worst_slack_overall_ps().map(f64::to_bits),
        "{label}: design-worst slack diverged"
    );
    assert_eq!(
        a.critical_path().gates,
        b.critical_path().gates,
        "{label}: critical path diverged"
    );
}

/// A buffer-insertion plan on a random fanout-heavy driven net (applied
/// identically to every twin, so they evolve in lockstep).
fn random_buffer_plan(
    graph: &TimingGraph,
    lib: &Library,
    rng: &mut SplitMix64,
) -> Option<EditPlan> {
    let circuit = graph.circuit();
    let candidates: Vec<_> = circuit
        .net_ids()
        .filter(|&n| circuit.driver_gate(n).is_some() && circuit.net(n).fanout() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let net = *rng.pick(&candidates);
    let loads = circuit.net(net).loads()[1..].to_vec();
    if loads.is_empty() {
        return None;
    }
    Some(
        vec![EditOp::InsertBuffer {
            net,
            loads,
            stage_cin_ff: [
                lib.min_drive_ff() * (1.0 + rng.next_f64()),
                lib.min_drive_ff() * (2.0 + 4.0 * rng.next_f64()),
            ],
        }]
        .into(),
    )
}

/// The core twin driver: a clean sequential graph (built before arming,
/// threads 1, so it never sees a fault) and forced-parallel twins at 2
/// and 4 threads **built and mutated under an armed panic+poison plan**,
/// all driven through identical mutation bursts with flush-forcing
/// queries after every burst. Mid-sequence checks run armed (recovery
/// must survive being re-faulted); the final check runs disarmed and
/// also audits every twin with `verify_state`.
fn faulted_twin_sequence(circuit: Circuit, seed: u64, steps: usize) {
    let _lock = fault_lock();
    let lib = Library::cmos025();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut clean = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
    clean.set_threads(1);
    let t0 = clean.critical_delay_ps();
    clean.set_constraint(0.9 * t0);

    let panics_before = faultinject::panics_fired();
    let plan = FaultPlan::from_seed(seed);
    let guard = ArmGuard::arm(&plan);

    // Built while armed: the initial full sweep's recovery path is part
    // of the contract.
    let mut twins: Vec<TimingGraph> = [2usize, 4]
        .iter()
        .map(|&t| {
            let mut g = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            g.set_threads(t);
            g.set_parallel_threshold(0);
            g.set_constraint(0.9 * t0);
            g
        })
        .collect();

    let mut rng = SplitMix64::new(seed);
    let cref = lib.min_drive_ff();
    for step in 0..steps {
        let gates: Vec<GateId> = clean.circuit().gate_ids().collect();
        match rng.below(6) {
            0 => {
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(8))
                    .map(|_| (*rng.pick(&gates), cref * (1.0 + 25.0 * rng.next_f64())))
                    .collect();
                clean.resize_gates(batch.clone());
                for g in &mut twins {
                    g.resize_gates(batch.clone());
                }
            }
            1 => {
                if let Some(plan) = random_buffer_plan(&clean, &lib, &mut rng) {
                    clean.apply_edits(&plan).expect("valid edit");
                    for g in &mut twins {
                        g.apply_edits(&plan).expect("valid edit");
                    }
                }
            }
            2 => {
                let tc = t0 * (0.7 + 0.6 * rng.next_f64());
                clean.set_constraint(tc);
                for g in &mut twins {
                    g.set_constraint(tc);
                }
            }
            _ => {
                let g = *rng.pick(&gates);
                let cin = cref * (1.0 + 25.0 * rng.next_f64());
                clean.resize_gate(g, cin);
                for t in &mut twins {
                    t.resize_gate(g, cin);
                }
            }
        }
        // Force forward + both backward flushes on every twin, under
        // fire, and pin the answers to the clean twin's bits.
        let delay = clean.critical_delay_ps().to_bits();
        let worst = clean.worst_slack_overall_ps().map(f64::to_bits);
        let probe = *rng.pick(&gates);
        let completion = clean.completion_ps(probe).to_bits();
        for (i, g) in twins.iter().enumerate() {
            assert_eq!(
                g.critical_delay_ps().to_bits(),
                delay,
                "step {step}, twin {i}: critical delay diverged under faults"
            );
            assert_eq!(
                g.worst_slack_overall_ps().map(f64::to_bits),
                worst,
                "step {step}, twin {i}: design-worst slack diverged under faults"
            );
            assert_eq!(
                g.completion_ps(probe).to_bits(),
                completion,
                "step {step}, twin {i}: completion of {probe} diverged under faults"
            );
        }
    }

    // A final option change forces the full-rescan parallel forward
    // sweep on every twin — the widest poison cross-section (every
    // gate's corner lanes evaluated under the armed plan).
    let options = AnalyzeOptions {
        po_load_ff: 42.0,
        input_transition_ps: 77.0,
    };
    clean.set_options(&options);
    let delay = clean.critical_delay_ps().to_bits();
    let worst = clean.worst_slack_overall_ps().map(f64::to_bits);
    for (i, g) in twins.iter_mut().enumerate() {
        g.set_options(&options);
        assert_eq!(
            g.critical_delay_ps().to_bits(),
            delay,
            "twin {i}: critical delay diverged through the faulted full rescan"
        );
        assert_eq!(
            g.worst_slack_overall_ps().map(f64::to_bits),
            worst,
            "twin {i}: design-worst slack diverged through the faulted full rescan"
        );
    }

    // The harness must actually have hurt the twins...
    assert!(
        faultinject::panics_fired() > panics_before,
        "the plan never fired a panic — the schedule is broken"
    );
    let recoveries: usize = twins.iter().map(|g| g.stats().panic_recoveries).sum();
    let fallbacks: usize = twins.iter().map(|g| g.stats().sequential_fallbacks).sum();
    assert!(recoveries > 0, "no twin recorded a panic recovery");
    assert!(
        fallbacks >= recoveries,
        "every recovery runs a fallback sweep"
    );
    // ...and the clean twin must never have been touched.
    assert_eq!(clean.stats().panic_recoveries, 0);
    assert_eq!(clean.stats().sequential_fallbacks, 0);

    // Final audit runs disarmed: settled state, full bit sweep, deep
    // consistency check on every graph.
    drop(guard);
    for (i, g) in twins.iter().enumerate() {
        assert_graphs_bit_equal(&clean, g, &format!("final, twin {i}"));
        g.verify_state()
            .unwrap_or_else(|e| panic!("twin {i} failed the audit after recovery: {e}"));
    }
    clean
        .verify_state()
        .unwrap_or_else(|e| panic!("clean twin failed the audit: {e}"));
}

#[test]
fn fpd_recovers_bit_exact_under_faults() {
    faulted_twin_sequence(suite::circuit("fpd").unwrap(), 0xFA17_F00D, 12);
}

#[test]
fn c432_recovers_bit_exact_under_faults() {
    faulted_twin_sequence(suite::circuit("c432").unwrap(), 0xFA17_0432, 12);
}

#[test]
fn c880_recovers_bit_exact_under_faults() {
    faulted_twin_sequence(suite::circuit("c880").unwrap(), 0xFA17_0880, 10);
}

#[test]
fn c1908_recovers_bit_exact_under_faults() {
    faulted_twin_sequence(suite::circuit("c1908").unwrap(), 0xFA17_1908, 10);
}

#[test]
fn c6288_recovers_bit_exact_under_faults() {
    faulted_twin_sequence(suite::circuit("c6288").unwrap(), 0xFA17_6288, 6);
}

#[test]
fn c7552_recovers_bit_exact_under_faults() {
    faulted_twin_sequence(suite::circuit("c7552").unwrap(), 0xFA17_7552, 6);
}

#[test]
fn synth10k_recovers_bit_exact_under_faults() {
    // Wide levels: the chunked pool dispatches, full-sweep cut-overs and
    // (with ~10k evals per sweep against a 400–2100-eval poison period)
    // guaranteed NaN poison hits, not just coordinator panics.
    let poisons_before = faultinject::poisons_fired();
    faulted_twin_sequence(suite::scaling_circuit("synth10k").unwrap(), 0xFA17_E010, 4);
    assert!(
        faultinject::poisons_fired() > poisons_before,
        "a synth10k sweep must trip the eval poison at least once"
    );
}

#[test]
fn corrupted_batch_is_rejected_atomically() {
    let _lock = fault_lock();
    let lib = Library::cmos025();
    let circuit = suite::circuit("c432").unwrap();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    let mut reference = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    graph.set_threads(1);
    reference.set_threads(1);
    let t0 = graph.critical_delay_ps();
    graph.set_constraint(0.9 * t0);
    reference.set_constraint(0.9 * t0);

    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let batch: Vec<(GateId, f64)> = gates
        .iter()
        .take(4)
        .map(|&g| (g, 3.0 * lib.min_drive_ff()))
        .collect();

    // Corrupt every batch; no panics, no poison.
    let plan = FaultPlan {
        seed: 7,
        corrupt_every_batches: Some(1),
        ..FaultPlan::default()
    };
    let fired_before = faultinject::corruptions_fired();
    let guard = ArmGuard::arm(&plan);
    let err = graph
        .try_resize_gates(batch.clone())
        .expect_err("a corrupted batch must be rejected");
    assert!(
        matches!(err, StaError::InvalidDrive { .. }),
        "wrong rejection: {err}"
    );
    assert!(
        err.to_string().contains("NaN"),
        "error must name the value: {err}"
    );
    assert!(faultinject::corruptions_fired() > fired_before);
    drop(guard);

    // Atomicity: the graph is bit-untouched by the rejected batch...
    assert_graphs_bit_equal(&graph, &reference, "after rejected batch");
    graph.verify_state().expect("audit after rejected batch");

    // ...and the identical batch applies cleanly once disarmed.
    graph
        .try_resize_gates(batch.clone())
        .expect("clean batch applies");
    reference.resize_gates(batch);
    assert_graphs_bit_equal(&graph, &reference, "after clean re-apply");
}

#[test]
fn constraint_boundary_rejects_nan_and_negative() {
    let _lock = fault_lock();
    let lib = Library::cmos025();
    let circuit = builders::inverter_chain(4);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();

    let err = graph.try_set_constraint(f64::NAN).unwrap_err();
    assert!(matches!(err, StaError::InvalidConstraint { .. }));
    assert!(
        err.to_string().contains("NaN"),
        "must name the value: {err}"
    );
    let err = graph.try_set_constraint(-3.0).unwrap_err();
    assert!(err.to_string().contains("-3"), "must name the value: {err}");
    let err = graph.try_set_constraint(f64::NEG_INFINITY).unwrap_err();
    assert!(matches!(err, StaError::InvalidConstraint { .. }));

    // Zero and +inf are meaningful constraints (everything violated /
    // nothing constrained) and must keep working.
    graph.try_set_constraint(0.0).unwrap();
    graph.try_set_constraint(f64::INFINITY).unwrap();
    graph.try_set_constraint(250.0).unwrap();
    graph.verify_state().expect("audit after constraint churn");
}

#[test]
fn id_boundaries_reject_foreign_gates() {
    let _lock = fault_lock();
    let lib = Library::cmos025();
    let small = builders::inverter_chain(3);
    let mut graph = TimingGraph::new(&small, &lib, &Sizing::minimum(&small, &lib)).unwrap();
    let d0 = graph.critical_delay_ps().to_bits();

    // A high-index id from a bigger circuit is the realistic stale-id
    // bug: a handle from a pre-surgery snapshot used after rebuild.
    let big = suite::circuit("c432").unwrap();
    let foreign = big.gate_ids().last().unwrap();

    let err = graph.try_resize_gate(foreign, 5.0).unwrap_err();
    assert!(
        matches!(err, StaError::GateOutOfRange { n_gates: 3, .. }),
        "wrong rejection: {err}"
    );
    let err = graph.try_set_vt_class(foreign, VtClass::Hvt).unwrap_err();
    assert!(matches!(err, StaError::GateOutOfRange { .. }));

    // Non-finite / non-positive drives, with a valid id.
    let g = small.gate_ids().next().unwrap();
    for bad in [f64::NAN, f64::INFINITY, 0.0, -1.0] {
        let err = graph.try_resize_gate(g, bad).unwrap_err();
        assert!(
            matches!(err, StaError::InvalidDrive { .. }),
            "cin {bad}: wrong rejection {err}"
        );
    }
    // A batch with one bad entry is rejected whole.
    let err = graph
        .try_resize_gates(vec![(g, 4.0), (foreign, 4.0)])
        .unwrap_err();
    assert!(matches!(err, StaError::GateOutOfRange { .. }));

    assert_eq!(
        graph.critical_delay_ps().to_bits(),
        d0,
        "rejected mutations must not move timing"
    );
    graph.verify_state().expect("audit after rejections");
}

#[test]
fn edit_plan_boundary_rejects_malformed_plans() {
    let _lock = fault_lock();
    let lib = Library::cmos025();
    let small = builders::inverter_chain(3);
    let mut graph = TimingGraph::new(&small, &lib, &Sizing::minimum(&small, &lib)).unwrap();
    let d0 = graph.critical_delay_ps().to_bits();
    let n_gates = graph.circuit().gate_count();

    let big = suite::circuit("c432").unwrap();
    let foreign_net = big.net_ids().last().unwrap();
    let plan: EditPlan = vec![EditOp::InsertBuffer {
        net: foreign_net,
        loads: vec![],
        stage_cin_ff: [1.0, 2.0],
    }]
    .into();
    let err = graph.apply_edits(&plan).unwrap_err();
    assert!(matches!(err, NetlistError::InvalidId(_)), "got {err}");
    let err = graph.try_apply_edits(&plan).unwrap_err();
    assert!(matches!(err, StaError::InvalidEdit(_)), "got {err}");

    // Non-finite created-stage capacitance, on a net that exists.
    let net = small.net_ids().next().unwrap();
    let plan: EditPlan = vec![EditOp::InsertBuffer {
        net,
        loads: vec![],
        stage_cin_ff: [f64::NAN, 2.0],
    }]
    .into();
    let err = graph.apply_edits(&plan).unwrap_err();
    assert!(matches!(err, NetlistError::UnsupportedEdit(_)), "got {err}");

    assert_eq!(graph.circuit().gate_count(), n_gates, "nothing applied");
    assert_eq!(graph.critical_delay_ps().to_bits(), d0);
    graph.verify_state().expect("audit after rejected plans");
}

#[test]
fn sizing_extend_dense_boundary() {
    let _lock = fault_lock();
    let lib = Library::cmos025();
    let chain2 = builders::inverter_chain(2);
    let chain4 = builders::inverter_chain(4);
    let mut sizing = Sizing::minimum(&chain2, &lib); // len 2

    // Gapped id set: index 3 cannot extend len()==2.
    let g3 = chain4.gate_ids().nth(3).unwrap();
    let err = sizing.try_extend_dense(vec![(g3, 1.0)]).unwrap_err();
    assert!(
        matches!(
            err,
            StaError::NonDenseSizing {
                gate: 3,
                expected: 2
            }
        ),
        "got {err}"
    );
    // Dense id, garbage capacitance.
    let g2 = chain4.gate_ids().nth(2).unwrap();
    let err = sizing.try_extend_dense(vec![(g2, f64::NAN)]).unwrap_err();
    assert!(
        matches!(err, StaError::InvalidDrive { gate: 2, .. }),
        "got {err}"
    );
    // Rejections are atomic: nothing was pushed.
    assert_eq!(sizing.len(), 2);

    // A dense batch listed out of order still lands correctly.
    sizing.try_extend_dense(vec![(g3, 4.0), (g2, 3.0)]).unwrap();
    assert_eq!(sizing.len(), 4);
    assert_eq!(sizing.cin_ff(g2), 3.0);
    assert_eq!(sizing.cin_ff(g3), 4.0);
}

#[test]
fn verify_state_passes_on_live_graphs() {
    let _lock = fault_lock();
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let sizing = Sizing::minimum(&circuit, &lib);

    // Fresh, mutated, structurally edited and multi-corner graphs all
    // pass the deep audit (it is a health check, not a fault detector —
    // a healthy engine must never trip it).
    let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    graph.verify_state().expect("fresh graph");
    let t0 = graph.critical_delay_ps();
    graph.set_constraint(0.9 * t0);
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    graph.resize_gates(gates.iter().map(|&g| (g, 2.0 * lib.min_drive_ff())));
    let _ = graph.worst_slack_overall_ps();
    graph.verify_state().expect("after resizes");

    let mut rng = SplitMix64::new(0xAD17_0880);
    if let Some(plan) = random_buffer_plan(&graph, &lib, &mut rng) {
        graph.apply_edits(&plan).unwrap();
        let _ = graph.critical_delay_ps();
        graph.verify_state().expect("after surgery");
    }

    let corners = CornerSet::slow_typical_fast(lib.process().clone());
    let mut mc = TimingGraph::with_corners(
        &circuit,
        &lib,
        &sizing,
        &pops::sta::analysis::AnalyzeOptions::default(),
        &corners,
    )
    .unwrap();
    mc.set_constraint(0.95 * t0);
    let _ = mc.worst_slack_overall_ps();
    mc.verify_state().expect("multi-corner graph");
}
