//! Fused multi-corner ≡ independent single-corner: one graph carrying
//! slow/typical/fast per-net corner arrays through a single dirty-cone
//! flush must be **bit-identical**, corner by corner, to N separate
//! single-corner graphs each built on that corner's library — under any
//! interleaving of resize / surgery / option / constraint / Vt-class
//! bursts, at 1, 2 and 4 threads (the pool twins force the parallel
//! path down to zero-gate thresholds). The fused pass must also do
//! strictly less gate-evaluation work than the N independent passes
//! combined: each union-cone gate is evaluated once *covering every
//! corner*, not once per corner.
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::rng::SplitMix64;
use pops::netlist::surgery::{EditOp, EditPlan};
use pops::netlist::{suite, VtClass};
use pops::prelude::*;
use pops::sta::analysis::{AnalyzeOptions, EdgeDir};
use pops::sta::TimingGraph;

/// The slow/typical/fast set every test here runs.
fn corners() -> CornerSet {
    CornerSet::slow_typical_fast(Process::cmos025())
}

/// Per-corner view of `fused` is bit-identical to the matching
/// single-corner `twins[c]` on every queryable value, and the fused
/// worst-over-corners slack folds exactly the twins' worsts.
fn assert_corners_bit_equal(fused: &TimingGraph, twins: &[TimingGraph], label: &str) {
    let circuit = fused.circuit();
    assert_eq!(fused.n_corners(), twins.len(), "{label}: corner count");
    for (c, twin) in twins.iter().enumerate() {
        assert_eq!(
            fused.critical_delay_ps_corner(c).to_bits(),
            twin.critical_delay_ps().to_bits(),
            "{label}: corner {c} critical delay diverged"
        );
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                assert_eq!(
                    fused.arrival_ps_corner(net, dir, c).to_bits(),
                    twin.arrival_ps(net, dir).to_bits(),
                    "{label}: corner {c} arrival of {net} {dir:?}"
                );
                assert_eq!(
                    fused.slope_ps_corner(net, dir, c).to_bits(),
                    twin.slope_ps(net, dir).to_bits(),
                    "{label}: corner {c} slope of {net} {dir:?}"
                );
                assert_eq!(
                    fused.required_ps_corner(net, dir, c).to_bits(),
                    twin.required_ps(net, dir).to_bits(),
                    "{label}: corner {c} required of {net} {dir:?}"
                );
                assert_eq!(
                    fused.slack_ps_corner(net, dir, c).to_bits(),
                    twin.slack_ps(net, dir).to_bits(),
                    "{label}: corner {c} slack of {net} {dir:?}"
                );
            }
            // Loads are corner-invariant: one slab serves every corner.
            assert_eq!(
                fused.net_load_ff(net).to_bits(),
                twin.net_load_ff(net).to_bits(),
                "{label}: corner {c} load of {net}"
            );
        }
        for g in circuit.gate_ids() {
            assert_eq!(
                fused.gate_delay_worst_ps_corner(g, c).to_bits(),
                twin.gate_delay_worst_ps(g).to_bits(),
                "{label}: corner {c} worst delay of {g}"
            );
        }
        assert_eq!(
            fused.worst_slack_overall_ps_corner(c).map(f64::to_bits),
            twin.worst_slack_overall_ps().map(f64::to_bits),
            "{label}: corner {c} design-worst slack diverged"
        );
    }
    // The plain queries are the primary-corner (corner 0) view …
    assert_eq!(
        fused.critical_delay_ps().to_bits(),
        twins[0].critical_delay_ps().to_bits(),
        "{label}: plain critical delay is not the corner-0 view"
    );
    assert_eq!(
        fused.critical_path().gates,
        twins[0].critical_path().gates,
        "{label}: critical path diverged from corner 0"
    );
    for g in circuit.gate_ids() {
        assert_eq!(
            fused.completion_ps(g).to_bits(),
            twins[0].completion_ps(g).to_bits(),
            "{label}: completion bound of {g} diverged from corner 0"
        );
    }
    let k = 4.min(circuit.primary_outputs().len().max(1));
    let fused_paths = k_most_critical_paths(circuit, fused, k);
    let twin_paths = k_most_critical_paths(circuit, &twins[0], k);
    assert_eq!(fused_paths.len(), twin_paths.len(), "{label}: k-path count");
    for (i, (a, b)) in fused_paths.iter().zip(&twin_paths).enumerate() {
        assert_eq!(a.gates, b.gates, "{label}: k-path {i} diverged");
    }
    // … and the overall worst folds every corner's worst.
    let folded = twins
        .iter()
        .filter_map(|t| t.worst_slack_overall_ps())
        .fold(f64::INFINITY, f64::min);
    assert_eq!(
        fused.worst_slack_overall_ps().map(f64::to_bits),
        (folded != f64::INFINITY).then_some(folded.to_bits()),
        "{label}: worst-over-corners fold diverged"
    );
}

/// A buffer-insertion plan on a random fanout-heavy driven net of the
/// current circuit (identical across twins — they evolve in lockstep).
fn random_buffer_plan(
    graph: &TimingGraph,
    lib: &Library,
    rng: &mut SplitMix64,
) -> Option<EditPlan> {
    let circuit = graph.circuit();
    let candidates: Vec<_> = circuit
        .net_ids()
        .filter(|&n| circuit.driver_gate(n).is_some() && circuit.net(n).fanout() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let net = *rng.pick(&candidates);
    let loads = circuit.net(net).loads()[1..].to_vec();
    if loads.is_empty() {
        return None;
    }
    Some(
        vec![EditOp::InsertBuffer {
            net,
            loads,
            stage_cin_ff: [
                lib.min_drive_ff() * (1.0 + rng.next_f64()),
                lib.min_drive_ff() * (2.0 + 4.0 * rng.next_f64()),
            ],
        }]
        .into(),
    )
}

/// Drive the fused graph and its per-corner twins — all at `threads`
/// workers — through `steps` random mutation bursts.
fn random_corner_twin_sequence(
    circuit: Circuit,
    seed: u64,
    steps: usize,
    check_every: usize,
    threads: usize,
) {
    let lib = Library::cmos025();
    let set = corners();
    let corner_libs: Vec<Library> = set.iter().map(|p| Library::new(p.clone())).collect();
    let sizing = Sizing::minimum(&circuit, &lib);
    let options = AnalyzeOptions::default();
    let mut fused = TimingGraph::with_corners(&circuit, &lib, &sizing, &options, &set).unwrap();
    let mut twins: Vec<TimingGraph> = corner_libs
        .iter()
        .map(|l| TimingGraph::with_options(&circuit, l, &sizing, &options).unwrap())
        .collect();
    for g in std::iter::once(&mut fused).chain(&mut twins) {
        g.set_threads(threads);
        if threads > 1 {
            g.set_parallel_threshold(0);
        }
    }

    let t0 = fused.critical_delay_ps();
    fused.set_constraint(0.9 * t0);
    for g in &mut twins {
        g.set_constraint(0.9 * t0);
    }

    let mut rng = SplitMix64::new(seed);
    let cref = lib.min_drive_ff();
    for step in 0..steps {
        let gates: Vec<GateId> = fused.circuit().gate_ids().collect();
        match rng.below(8) {
            0 => {
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(8))
                    .map(|_| {
                        let g = *rng.pick(&gates);
                        (g, cref * (1.0 + 25.0 * rng.next_f64()))
                    })
                    .collect();
                fused.resize_gates(batch.clone());
                for g in &mut twins {
                    g.resize_gates(batch.clone());
                }
            }
            1 => {
                // Structural surgery: re-levels, re-ranks and re-slots
                // the widened slabs under pending seeds in every twin.
                if let Some(plan) = random_buffer_plan(&fused, &lib, &mut rng) {
                    fused.apply_edits(&plan).expect("valid edit");
                    for g in &mut twins {
                        g.apply_edits(&plan).expect("valid edit");
                    }
                }
            }
            2 => {
                // Option change: the full-rescan path on every corner.
                let options = AnalyzeOptions {
                    po_load_ff: 5.0 + 40.0 * rng.next_f64(),
                    input_transition_ps: 20.0 + 100.0 * rng.next_f64(),
                };
                fused.set_options(&options);
                for g in &mut twins {
                    g.set_options(&options);
                }
            }
            3 => {
                let tc = t0 * (0.7 + 0.6 * rng.next_f64());
                fused.set_constraint(tc);
                for g in &mut twins {
                    g.set_constraint(tc);
                }
            }
            4 => {
                // Vt-class swap: per-(gate,corner) parameter rebuild and
                // a re-timed cone in the fused graph *and* every twin.
                let g = *rng.pick(&gates);
                let class = *rng.pick(&[VtClass::Lvt, VtClass::Svt, VtClass::Hvt]);
                fused.set_vt_class(g, class);
                for t in &mut twins {
                    t.set_vt_class(g, class);
                }
            }
            _ => {
                let g = *rng.pick(&gates);
                let cin = cref * (1.0 + 25.0 * rng.next_f64());
                fused.resize_gate(g, cin);
                for t in &mut twins {
                    t.resize_gate(g, cin);
                }
            }
        }
        if step % check_every == check_every - 1 {
            assert_corners_bit_equal(&fused, &twins, &format!("step {step}"));
        }
    }
    assert_corners_bit_equal(&fused, &twins, "final");
}

#[test]
fn fpd_corners_match_single_corner() {
    let c = suite::circuit("fpd").unwrap();
    random_corner_twin_sequence(c.clone(), 0xC04E_F00D, 24, 4, 1);
    random_corner_twin_sequence(c, 0xC04E_F004, 16, 4, 4);
}

#[test]
fn c432_corners_match_single_corner() {
    let c = suite::circuit("c432").unwrap();
    random_corner_twin_sequence(c.clone(), 0xC04E_0432, 24, 4, 1);
    random_corner_twin_sequence(c, 0xC04E_0434, 16, 4, 4);
}

#[test]
fn c880_corners_match_single_corner() {
    let c = suite::circuit("c880").unwrap();
    random_corner_twin_sequence(c.clone(), 0xC04E_0880, 16, 4, 1);
    random_corner_twin_sequence(c, 0xC04E_0884, 12, 4, 4);
}

#[test]
fn c1908_corners_match_single_corner() {
    let c = suite::circuit("c1908").unwrap();
    random_corner_twin_sequence(c.clone(), 0xC04E_1908, 16, 4, 1);
    random_corner_twin_sequence(c, 0xC04E_1904, 12, 4, 4);
}

#[test]
fn c6288_corners_match_single_corner() {
    let c = suite::circuit("c6288").unwrap();
    random_corner_twin_sequence(c.clone(), 0xC04E_6288, 6, 3, 1);
    random_corner_twin_sequence(c, 0xC04E_6284, 6, 3, 4);
}

#[test]
fn c7552_corners_match_single_corner() {
    let c = suite::circuit("c7552").unwrap();
    random_corner_twin_sequence(c.clone(), 0xC04E_7552, 6, 3, 1);
    random_corner_twin_sequence(c, 0xC04E_7554, 6, 3, 4);
}

#[test]
fn c880_corners_match_single_corner_two_threads() {
    let c = suite::circuit("c880").unwrap();
    random_corner_twin_sequence(c, 0xC04E_0882, 12, 4, 2);
}

#[test]
fn synth10k_corners_match_single_corner() {
    // Wide random-logic levels drive the chunked pool dispatches over
    // the widened (stride-3) slabs.
    let c = suite::scaling_circuit("synth10k").unwrap();
    random_corner_twin_sequence(c.clone(), 0xC04E_E010, 4, 2, 1);
    random_corner_twin_sequence(c, 0xC04E_E014, 3, 3, 4);
}

#[test]
fn fused_flush_does_sublinear_corner_work() {
    // The point of fusing: one dirty-cone drain evaluates each gate
    // once *covering all three corners*, so its evaluation count must
    // come in strictly below the three independent single-corner
    // graphs' combined count for the same mutation burst — and in fact
    // match the count a lone single-corner graph pays for the same cone.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let set = corners();
    let corner_libs: Vec<Library> = set.iter().map(|p| Library::new(p.clone())).collect();
    let sizing = Sizing::minimum(&circuit, &lib);
    let options = AnalyzeOptions::default();
    let mut fused = TimingGraph::with_corners(&circuit, &lib, &sizing, &options, &set).unwrap();
    let mut twins: Vec<TimingGraph> = corner_libs
        .iter()
        .map(|l| TimingGraph::with_options(&circuit, l, &sizing, &options).unwrap())
        .collect();
    let t0 = fused.critical_delay_ps();
    fused.set_constraint(0.9 * t0);
    for g in &mut twins {
        g.set_constraint(0.9 * t0);
    }
    // Settle everything, then measure one shared burst.
    let _ = fused.worst_slack_overall_ps();
    for g in &mut twins {
        let _ = g.worst_slack_overall_ps();
    }

    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let batch: Vec<(GateId, f64)> = gates
        .iter()
        .step_by(97)
        .map(|&g| (g, 4.0 * lib.min_drive_ff()))
        .collect();
    let fused_before = fused.stats().gates_reevaluated;
    fused.resize_gates(batch.clone());
    let _ = fused.worst_slack_overall_ps();
    let fused_evals = fused.stats().gates_reevaluated - fused_before;

    let mut twin_evals = 0usize;
    for g in &mut twins {
        let before = g.stats().gates_reevaluated;
        g.resize_gates(batch.clone());
        let _ = g.worst_slack_overall_ps();
        twin_evals += g.stats().gates_reevaluated - before;
    }

    assert!(fused_evals > 0, "the burst must dirty a cone");
    assert!(
        fused_evals < twin_evals,
        "fused {fused_evals} evals must undercut {} independent corners' {twin_evals}",
        set.len()
    );
    // Tighter: the fused union cone can only exceed a single corner's
    // cone through corner-dependent convergence cuts, never by a
    // corner-count factor.
    assert!(
        fused_evals * 2 < twin_evals,
        "fused {fused_evals} evals should be near one corner's share of {twin_evals}"
    );
}
