//! Property-based tests over the netlist substrate: random DAG
//! construction, logic evaluation, `.bench` round-trips and STA sanity.
//!
//! Randomized with the in-tree deterministic [`SplitMix64`] generator
//! (the workspace builds offline, so no external property-testing
//! framework): each property runs over 48 seeded random cases.

use std::collections::HashMap;

use pops::netlist::bench_format::{parse_bench, write_bench};
use pops::netlist::rng::SplitMix64;
use pops::prelude::*;

const CASES: u64 = 48;

/// Deterministically build a random layered DAG from a seed.
fn random_circuit(seed: u64, n_inputs: usize, n_gates: usize) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(format!("rand_{seed:x}"));
    let mut nets: Vec<NetId> = (0..n_inputs)
        .map(|i| c.add_input(format!("i{i}")))
        .collect();
    let cells = [
        CellKind::Inv,
        CellKind::Buf,
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
        CellKind::Nand3,
        CellKind::Nor3,
    ];
    for g in 0..n_gates {
        let kind = cells[rng.below(cells.len())];
        let mut inputs = Vec::with_capacity(kind.num_inputs());
        while inputs.len() < kind.num_inputs() {
            let candidate = nets[rng.below(nets.len())];
            if !inputs.contains(&candidate) || nets.len() < 3 {
                inputs.push(candidate);
            }
        }
        let out = c
            .add_gate(kind, &inputs, format!("g{g}"))
            .expect("arity correct by construction");
        nets.push(out);
    }
    // All sinks become outputs.
    let sinks: Vec<NetId> = c
        .net_ids()
        .filter(|&n| {
            c.net(n).loads().is_empty() && matches!(c.net(n).driver(), Some(NetDriver::Gate(_)))
        })
        .collect();
    for n in sinks {
        c.mark_output(n);
    }
    c
}

fn random_vector(c: &Circuit, seed: u64) -> HashMap<&str, bool> {
    let mut rng = SplitMix64::new(seed);
    c.primary_inputs()
        .iter()
        .map(|&n| (c.net(n).name(), rng.chance(0.5)))
        .collect()
}

#[test]
fn random_circuits_validate_and_order() {
    let mut gen = SplitMix64::new(0xA0);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let n_inputs = 2 + gen.below(6);
        let n_gates = 1 + gen.below(39);
        let c = random_circuit(seed, n_inputs, n_gates);
        assert!(c.validate().is_ok());
        let order = c.topo_order().expect("acyclic by construction");
        assert_eq!(order.len(), c.gate_count());
        // Fanin-before-fanout.
        let mut pos = vec![0usize; c.gate_count()];
        for (i, g) in order.iter().enumerate() {
            pos[g.index()] = i;
        }
        for g in c.gate_ids() {
            for &n in c.gate(g).inputs() {
                if let Some(NetDriver::Gate(src)) = c.net(n).driver() {
                    assert!(pos[src.index()] < pos[g.index()]);
                }
            }
        }
    }
}

#[test]
fn bench_round_trip_preserves_function() {
    let mut gen = SplitMix64::new(0xA1);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let vec_seed = gen.next_u64();
        let c = random_circuit(seed, 5, 20);
        let text = write_bench(&c);
        let r = parse_bench(c.name(), &text).expect("own output parses");
        assert_eq!(r.gate_count(), c.gate_count());
        let vals = random_vector(&c, vec_seed);
        let out_a = c.evaluate(&vals).expect("evaluable");
        let out_b = r.evaluate(&vals).expect("evaluable");
        assert_eq!(out_a, out_b);
    }
}

#[test]
fn evaluation_is_deterministic() {
    let mut gen = SplitMix64::new(0xA2);
    for _ in 0..CASES {
        let seed = gen.next_u64();
        let vec_seed = gen.next_u64();
        let c = random_circuit(seed, 4, 15);
        let vals = random_vector(&c, vec_seed);
        assert_eq!(
            c.evaluate(&vals).expect("ok"),
            c.evaluate(&vals).expect("ok")
        );
    }
}

#[test]
fn sta_arrival_covers_every_output() {
    let lib = Library::cmos025();
    let mut gen = SplitMix64::new(0xA3);
    for _ in 0..CASES {
        let c = random_circuit(gen.next_u64(), 4, 25);
        let sizing = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &sizing).expect("acyclic");
        let critical = report.critical_delay_ps();
        assert!(critical > 0.0);
        for &po in c.primary_outputs() {
            let arr = report
                .arrival_ps(po, pops::sta::analysis::EdgeDir::Rising)
                .max(report.arrival_ps(po, pops::sta::analysis::EdgeDir::Falling));
            assert!(arr <= critical + 1e-9);
        }
    }
}

#[test]
fn critical_path_is_connected_and_reaches_an_output() {
    let lib = Library::cmos025();
    let mut gen = SplitMix64::new(0xA4);
    for _ in 0..CASES {
        let c = random_circuit(gen.next_u64(), 4, 25);
        let sizing = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &sizing).expect("acyclic");
        let path = report.critical_path();
        assert!(!path.gates.is_empty());
        for w in path.gates.windows(2) {
            let out = c.gate(w[0]).output();
            assert!(c.net(out).loads().iter().any(|&(g, _)| g == w[1]));
        }
        let last_net = c.gate(*path.gates.last().unwrap()).output();
        assert!(c.net(last_net).is_output());
    }
}

#[test]
fn extraction_matches_path_length() {
    let lib = Library::cmos025();
    let mut gen = SplitMix64::new(0xA5);
    for _ in 0..CASES {
        let c = random_circuit(gen.next_u64(), 4, 30);
        let sizing = Sizing::minimum(&c, &lib);
        let report = analyze(&c, &lib, &sizing).expect("acyclic");
        let path = report.critical_path();
        let e = extract_timed_path(&c, &lib, &sizing, &path, &ExtractOptions::default());
        assert_eq!(e.timed.len(), path.gates.len());
        // Off-path loads are non-negative and terminal is positive.
        for s in e.timed.stages() {
            assert!(s.off_path_load_ff >= 0.0);
        }
        assert!(e.timed.terminal_load_ff() > 0.0);
    }
}

#[test]
fn demorgan_dual_preserves_logic_on_random_vectors() {
    // NORn(x…) == !NANDn(!x…)
    for cell in [CellKind::Nor2, CellKind::Nor3, CellKind::Nor4] {
        let n = cell.num_inputs();
        let dual = cell.demorgan_dual().expect("NORs have duals");
        for bits in 0u32..(1 << n) {
            let ins: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            let inverted: Vec<bool> = ins.iter().map(|&b| !b).collect();
            assert_eq!(cell.evaluate(&ins), !dual.evaluate(&inverted));
        }
    }
}
