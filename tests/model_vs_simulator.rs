//! Integration: closed-form model vs the transistor-level simulator —
//! the paper's SPICE-validation axis, asserted as testable bands.

use pops::prelude::*;
use pops::spice::path_sim::simulate_path;
use pops::spice::ElectricalParams;

fn setup() -> (ElectricalParams, Library) {
    (ElectricalParams::cmos025(), Library::cmos025())
}

#[test]
fn model_and_simulator_agree_on_ranking_across_sizings() {
    let (params, lib) = setup();
    let path = TimedPath::new(
        vec![
            PathStage::new(CellKind::Inv),
            PathStage::new(CellKind::Nand2),
            PathStage::new(CellKind::Nor2),
            PathStage::new(CellKind::Inv),
        ],
        lib.min_drive_ff(),
        80.0,
    );
    let cref = lib.min_drive_ff();
    let sizings: Vec<Vec<f64>> = vec![
        path.min_sizes(&lib),
        vec![cref, 3.0 * cref, 3.0 * cref, 3.0 * cref],
        vec![cref, 2.0 * cref, 4.0 * cref, 8.0 * cref],
        vec![cref, 8.0 * cref, 4.0 * cref, 2.0 * cref],
    ];
    let model: Vec<f64> = sizings
        .iter()
        .map(|s| path.delay(&lib, s).total_ps)
        .collect();
    let sim: Vec<f64> = sizings
        .iter()
        .map(|s| simulate_path(&params, &lib, &path, s).total_delay_ps)
        .collect();
    let rank = |xs: &[f64]| {
        let mut idx: Vec<usize> = (0..xs.len()).collect();
        idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
        idx
    };
    assert_eq!(rank(&model), rank(&sim), "model {model:?} vs sim {sim:?}");
}

#[test]
fn absolute_agreement_within_a_factor_of_two() {
    let (params, lib) = setup();
    for terminal in [20.0, 60.0, 150.0] {
        let path = TimedPath::new(
            vec![PathStage::new(CellKind::Inv); 4],
            lib.min_drive_ff(),
            terminal,
        );
        let sizes = path.min_sizes(&lib);
        let model = path.delay(&lib, &sizes).total_ps;
        let sim = simulate_path(&params, &lib, &path, &sizes).total_delay_ps;
        let ratio = model / sim;
        assert!(
            (0.5..2.0).contains(&ratio),
            "terminal {terminal}: model {model} vs sim {sim}"
        );
    }
}

#[test]
fn tmin_sizing_is_also_fast_under_the_simulator() {
    // The optimizer's Tmin sizing must beat the min-drive sizing when
    // *measured by the independent simulator*, not just by its own model.
    let (params, lib) = setup();
    let path = TimedPath::new(
        vec![
            PathStage::new(CellKind::Inv),
            PathStage::with_load(CellKind::Nor3, 40.0),
            PathStage::new(CellKind::Nand2),
            PathStage::new(CellKind::Inv),
        ],
        lib.min_drive_ff(),
        200.0,
    );
    let min_sizes = path.min_sizes(&lib);
    let opt = tmin(&lib, &path);
    let sim_min = simulate_path(&params, &lib, &path, &min_sizes).total_delay_ps;
    let sim_opt = simulate_path(&params, &lib, &path, &opt.sizes).total_delay_ps;
    assert!(
        sim_opt < sim_min,
        "simulator disagrees: optimized {sim_opt} vs min {sim_min}"
    );
}

#[test]
fn buffer_benefit_confirmed_by_the_simulator_above_flimit() {
    // Table 2's crossover, cross-checked end-to-end: above the analytic
    // Flimit, the simulator also prefers the buffered structure.
    let (params, lib) = setup();
    let gate = CellKind::Nor3;
    let limit = flimit(&lib, CellKind::Inv, gate).expect("crossover exists");
    let cref = lib.min_drive_ff();
    let cin = 4.0 * cref;
    let fanout = 2.5 * limit;
    let terminal = fanout * cin;

    let direct = TimedPath::new(
        vec![PathStage::new(CellKind::Inv), PathStage::new(gate)],
        cin,
        terminal,
    );
    let d_direct = simulate_path(&params, &lib, &direct, &[cin, cin]).total_delay_ps;

    let buffered = TimedPath::new(
        vec![
            PathStage::new(CellKind::Inv),
            PathStage::new(gate),
            PathStage::new(CellKind::Inv),
        ],
        cin,
        terminal,
    );
    // Size the buffer near the geometric mean of its source/sink caps.
    let buf = (cin * terminal).sqrt();
    let d_buffered = simulate_path(&params, &lib, &buffered, &[cin, cin, buf]).total_delay_ps;
    assert!(
        d_buffered < d_direct,
        "simulator: buffered {d_buffered} !< direct {d_direct} at F = {fanout:.1}"
    );
}

use pops::core::bounds::tmin;
