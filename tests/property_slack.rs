//! Property suite for the backward timing surface (SplitMix64-seeded,
//! so failures reproduce):
//!
//! * `slack = required − arrival` holds bit-exactly at every net, on
//!   both backends, under random sizings;
//! * the design-worst slack is monotone non-increasing under pure load
//!   increases (heavier primary-output latches);
//! * `k_most_critical_paths` returns paths in non-increasing weight
//!   order with `path_weight_ps` bit-consistent across the
//!   `TimingReport` and `TimingGraph` backends.

use pops::netlist::rng::SplitMix64;
use pops::prelude::*;
use pops::sta::analysis::{analyze_with, AnalyzeOptions, EdgeDir};
use pops::sta::kpaths::path_weight_ps;
use pops::sta::TimingGraph;

/// A random sizing between 1× and 25× minimum drive.
fn random_sizing(circuit: &Circuit, lib: &Library, rng: &mut SplitMix64) -> Sizing {
    let mut sizing = Sizing::minimum(circuit, lib);
    for g in circuit.gate_ids() {
        sizing.set(g, lib.min_drive_ff() * (1.0 + 24.0 * rng.next_f64()));
    }
    sizing
}

#[test]
fn slack_is_required_minus_arrival_everywhere() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x51AC_0001);
    for name in ["fpd", "c432", "c880"] {
        let circuit = suite::circuit(name).unwrap();
        let sizing = random_sizing(&circuit, &lib, &mut rng);
        let report = analyze(&circuit, &lib, &sizing).unwrap();
        let tc = 0.9 * report.critical_delay_ps();
        let slacks = required_times(&circuit, &lib, &sizing, &report, tc).unwrap();
        let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
        graph.set_constraint(tc);
        for net in circuit.net_ids() {
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                // Identity on the one-shot report...
                let want = slacks.required_ps(net, dir) - report.arrival_ps(net, dir);
                assert_eq!(
                    slacks.slack_ps(net, dir).to_bits(),
                    want.to_bits(),
                    "{name}: report slack identity at {net} {dir:?}"
                );
                // ... and on the incremental graph.
                let want = graph.required_ps(net, dir) - graph.arrival_ps(net, dir);
                assert_eq!(
                    graph.slack_ps(net, dir).to_bits(),
                    want.to_bits(),
                    "{name}: graph slack identity at {net} {dir:?}"
                );
                // Never NaN, per the documented value domains.
                assert!(!slacks.slack_ps(net, dir).is_nan(), "{name}: NaN slack");
            }
        }
    }
}

#[test]
fn worst_slack_is_monotone_under_po_load_increase() {
    // A pure load increase (heavier capturing latches) can only slow
    // arcs: arrivals rise, required times fall, so every slack — and in
    // particular the design-worst slack — is non-increasing.
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x51AC_0002);
    for name in ["fpd", "c432"] {
        let circuit = suite::circuit(name).unwrap();
        let sizing = random_sizing(&circuit, &lib, &mut rng);
        let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
        graph.set_constraint(1.1 * graph.critical_delay_ps());
        let mut last = f64::INFINITY;
        let mut po_load = 5.0;
        for _ in 0..8 {
            graph.set_options(&AnalyzeOptions {
                po_load_ff: po_load,
                input_transition_ps: 50.0,
            });
            let worst = graph.worst_slack_overall_ps().unwrap();
            assert!(
                worst <= last + 1e-9,
                "{name}: worst slack rose from {last} to {worst} at po_load {po_load}"
            );
            last = worst;
            po_load += 3.0 + 20.0 * rng.next_f64();
        }
    }
}

#[test]
fn kpaths_weights_are_non_increasing_and_backend_consistent() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0x51AC_0003);
    for name in ["fpd", "c432", "c880"] {
        let circuit = suite::circuit(name).unwrap();
        let sizing = random_sizing(&circuit, &lib, &mut rng);
        let report = analyze(&circuit, &lib, &sizing).unwrap();
        let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
        graph.set_constraint(0.95 * graph.critical_delay_ps());

        let via_report = k_most_critical_paths(&circuit, &report, 12);
        let via_graph = k_most_critical_paths(&circuit, &graph, 12);
        assert_eq!(via_report.len(), via_graph.len(), "{name}: path counts");
        assert!(!via_report.is_empty(), "{name}: no paths found");

        let mut last = f64::INFINITY;
        for (a, b) in via_report.iter().zip(&via_graph) {
            assert_eq!(a.gates, b.gates, "{name}: backends rank differently");
            // Weights are bit-consistent across backends...
            let wa = path_weight_ps(&report, a);
            let wb = path_weight_ps(&graph, b);
            assert_eq!(wa.to_bits(), wb.to_bits(), "{name}: weight diverged");
            // ... and non-increasing down the ranking.
            assert!(
                wa <= last + 1e-9,
                "{name}: weight {wa} follows lighter {last}"
            );
            last = wa;
        }
    }
}

#[test]
fn slack_identity_survives_a_random_resize_walk() {
    // The identity is cheap to check incrementally, so walk a random
    // resize sequence and spot-check it straight off the graph.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c432").unwrap();
    let mut rng = SplitMix64::new(0x51AC_0004);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let nets: Vec<NetId> = circuit.net_ids().collect();
    let cref = lib.min_drive_ff();
    for _ in 0..60 {
        let g = *rng.pick(&gates);
        graph.resize_gate(g, cref * (1.0 + 25.0 * rng.next_f64()));
        for _ in 0..16 {
            let net = *rng.pick(&nets);
            for dir in [EdgeDir::Rising, EdgeDir::Falling] {
                let want = graph.required_ps(net, dir) - graph.arrival_ps(net, dir);
                assert_eq!(graph.slack_ps(net, dir).to_bits(), want.to_bits());
                assert!(!graph.slack_ps(net, dir).is_nan());
            }
        }
    }
}

#[test]
fn analyze_with_agrees_with_graph_under_random_options() {
    // Forward+backward state under random options: the fresh analysis
    // and the rebuilt graph state must agree bit-for-bit on weights so
    // path ranking can never depend on the backend.
    let lib = Library::cmos025();
    let circuit = suite::circuit("fpd").unwrap();
    let mut rng = SplitMix64::new(0x51AC_0005);
    let sizing = random_sizing(&circuit, &lib, &mut rng);
    let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    graph.set_constraint(1.05 * graph.critical_delay_ps());
    for _ in 0..6 {
        let options = AnalyzeOptions {
            po_load_ff: 2.0 + 60.0 * rng.next_f64(),
            input_transition_ps: 10.0 + 150.0 * rng.next_f64(),
        };
        graph.set_options(&options);
        let fresh = analyze_with(&circuit, &lib, &sizing, &options).unwrap();
        for g in circuit.gate_ids() {
            assert_eq!(
                graph.gate_delay_worst_ps(g).to_bits(),
                fresh.gate_delay_worst_ps(g).to_bits()
            );
        }
        let a = k_most_critical_paths(&circuit, &graph, 5);
        let b = k_most_critical_paths(&circuit, &fresh, 5);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.gates, y.gates);
        }
    }
}
