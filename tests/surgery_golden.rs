//! Golden regression for the structural write-back: a deterministic
//! whole-circuit surgery pass on c1908 / c6288 / c7552 — De Morgan
//! every over-limit NOR, buffer every other over-limit net (first load
//! pin kept direct) at minimum sizing under default options, tc = 0.9 T0
//! — has its op counts, post-edit gate/net counts, post-edit critical
//! delay and design-worst slack pinned to 1e-9 ps. Table 3/4-style
//! results derive from exactly these quantities, so a drift in the
//! `Flimit` characterization, the planners' selection rules, the
//! surgery primitives or the incremental re-timing cannot land
//! silently.
//!
//! If an *intentional* model or planner change moves these values,
//! regenerate them with the snippet in this file's git history and
//! update the table alongside the change that explains why.

use std::collections::HashSet;

use pops::core::buffer::{plan_buffer_insertions, FlimitCache};
use pops::core::restructure::plan_demorgan_restructure;
use pops::netlist::surgery::{EditOp, EditPlan};
use pops::prelude::*;
use pops::sta::TimingGraph;

/// Pinned facts: buffer ops, De Morgan ops, post-edit gate count,
/// post-edit net count, pre-edit critical delay (ps), post-edit
/// critical delay (ps), post-edit design-worst slack (ps).
type Golden = (usize, usize, usize, usize, f64, f64, f64);

const GOLDEN: [(&str, Golden); 3] = [
    (
        "c1908",
        (
            25,
            7,
            951,
            984,
            9057.905116421578,
            5193.02406933708,
            2959.0905354423394,
        ),
    ),
    (
        "c6288",
        (
            26,
            71,
            2681,
            2713,
            26192.28258910711,
            20300.894763503988,
            3272.1595666923868,
        ),
    ),
    (
        "c7552",
        (
            52,
            12,
            3652,
            3859,
            25250.958260207502,
            5938.004634722424,
            16787.857799464324,
        ),
    ),
];

/// The deterministic whole-circuit surgery plan this suite pins.
fn golden_plan(base: &Circuit, lib: &Library, cache: &mut FlimitCache) -> (EditPlan, usize, usize) {
    let cref = lib.min_drive_ff();
    let cins = vec![cref; base.gate_count()];
    let po_load = 10.0; // AnalyzeOptions::default().po_load_ff
    let candidates: Vec<GateId> = base.gate_ids().collect();
    let demorgan = plan_demorgan_restructure(base, lib, &cins, po_load, &candidates, cache);
    let rewritten: HashSet<GateId> = demorgan
        .ops()
        .iter()
        .filter_map(|op| match op {
            EditOp::DeMorgan { gate, .. } => Some(*gate),
            _ => None,
        })
        .collect();
    let buffer_nets: Vec<NetId> = base
        .gate_ids()
        .filter(|g| !rewritten.contains(g))
        .map(|g| base.gate(g).output())
        .collect();
    let mut plan = plan_buffer_insertions(
        base,
        lib,
        &cins,
        po_load,
        &buffer_nets,
        |n, g| base.net(n).loads().first().map(|&(g0, _)| g0) != Some(g),
        cache,
    );
    let buffers = plan.len();
    plan.extend(demorgan);
    let demorgans = plan.len() - buffers;
    (plan, buffers, demorgans)
}

fn golden_case(name: &str, golden: Golden) {
    let (buffers, demorgans, gates_after, nets_after, t0_pin, t_after_pin, ws_pin) = golden;
    let lib = Library::cmos025();
    let base = suite::circuit(name).unwrap();
    let sizing = Sizing::minimum(&base, &lib);
    let mut graph = TimingGraph::new(&base, &lib, &sizing).unwrap();
    let t0 = graph.critical_delay_ps();
    assert!(
        (t0 - t0_pin).abs() < 1e-9,
        "{name}: baseline delay {t0} vs pinned {t0_pin}"
    );
    graph.set_constraint(0.9 * t0);

    let mut cache = FlimitCache::new();
    let (plan, got_buffers, got_demorgans) = golden_plan(&base, &lib, &mut cache);
    assert_eq!(got_buffers, buffers, "{name}: buffer op count");
    assert_eq!(got_demorgans, demorgans, "{name}: De Morgan op count");

    let applied = graph.apply_edits(&plan).unwrap();
    assert_eq!(applied.len(), plan.len(), "{name}: every op applies");
    assert_eq!(
        graph.circuit().gate_count(),
        gates_after,
        "{name}: post-edit gate count"
    );
    assert_eq!(
        graph.circuit().net_count(),
        nets_after,
        "{name}: post-edit net count"
    );
    let t_after = graph.critical_delay_ps();
    assert!(
        (t_after - t_after_pin).abs() < 1e-9,
        "{name}: post-edit delay {t_after} vs pinned {t_after_pin}"
    );
    let ws = graph.worst_slack_overall_ps().unwrap();
    assert!(
        (ws - ws_pin).abs() < 1e-9,
        "{name}: post-edit worst slack {ws} vs pinned {ws_pin}"
    );

    // And the incrementally patched state *is* the rebuild: a fresh
    // graph over the edited circuit agrees bit-for-bit.
    let fresh = {
        let mut g =
            TimingGraph::with_options(graph.circuit(), &lib, graph.sizing(), graph.options())
                .unwrap();
        g.set_constraint(0.9 * t0);
        g
    };
    assert_eq!(
        graph.critical_delay_ps().to_bits(),
        fresh.critical_delay_ps().to_bits(),
        "{name}: incremental vs rebuild delay"
    );
    assert_eq!(
        graph.worst_slack_overall_ps().map(f64::to_bits),
        fresh.worst_slack_overall_ps().map(f64::to_bits),
        "{name}: incremental vs rebuild worst slack"
    );
}

#[test]
fn c1908_surgery_results_are_pinned() {
    let (name, golden) = GOLDEN[0];
    golden_case(name, golden);
}

#[test]
fn c6288_surgery_results_are_pinned() {
    let (name, golden) = GOLDEN[1];
    golden_case(name, golden);
}

#[test]
fn c7552_surgery_results_are_pinned() {
    let (name, golden) = GOLDEN[2];
    golden_case(name, golden);
}
