//! Hostile-input property tests for the `.bench` parser: whatever
//! garbage arrives — truncated lines, duplicate drivers, undeclared
//! nets, junk characters, shuffled fragments of valid netlists —
//! [`parse_bench`] must return a typed [`NetlistError`], never panic,
//! and every syntax error must carry a **real** 1-based line number
//! pointing into the input (a `line: 0` placeholder is a bug: it sends
//! whoever is debugging a malformed netlist to a line that does not
//! exist).
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::bench_format::{parse_bench, write_bench};
use pops::netlist::rng::SplitMix64;
use pops::netlist::{builders, NetlistError};

/// Parse and enforce the error contract: syntax errors name a line that
/// exists in the input (1-based, never 0) and render it in `Display`.
fn parse_expecting_sane_errors(name: &str, text: &str) -> Result<(), NetlistError> {
    match parse_bench(name, text) {
        Ok(_) => Ok(()),
        Err(e) => {
            if let NetlistError::BenchSyntax { line, ref message } = e {
                let n_lines = text.lines().count();
                assert!(
                    line >= 1 && line <= n_lines.max(1),
                    "line {line} outside input ({n_lines} lines) for error `{message}`\n\
                     --- input ---\n{text}"
                );
                assert!(
                    e.to_string().contains(&format!("line {line}")),
                    "display must cite the line: {e}"
                );
            }
            assert!(!e.to_string().is_empty());
            Err(e)
        }
    }
}

#[test]
fn malformed_directives_cite_their_own_line() {
    // The INPUT on line 3 is truncated: the error must say line 3, not
    // line 0 (the historic placeholder) and not the line of some other
    // directive.
    let text = "INPUT(a)\nINPUT(b)\nINPUT\nOUTPUT(y)\ny = NAND(a, b)\n";
    let err = parse_bench("t", text).unwrap_err();
    match err {
        NetlistError::BenchSyntax { line, ref message } => {
            assert_eq!(line, 3, "wrong line for `{message}`");
            assert!(message.contains("INPUT"), "got `{message}`");
        }
        other => panic!("expected a syntax error, got {other}"),
    }

    // Empty directive name, line 2.
    let text = "INPUT(a)\nOUTPUT()\ny = INV(a)\n";
    let err = parse_bench("t", text).unwrap_err();
    match err {
        NetlistError::BenchSyntax { line, ref message } => {
            assert_eq!(line, 2, "wrong line for `{message}`");
            assert!(message.contains("empty name"), "got `{message}`");
        }
        other => panic!("expected a syntax error, got {other}"),
    }
}

#[test]
fn classic_malformations_return_typed_errors() {
    let cases: &[(&str, &str)] = &[
        // Truncated gate line: no closing paren.
        ("INPUT(a)\nOUTPUT(y)\ny = NAND(a,", "closing"),
        // Truncated after `=`.
        ("INPUT(a)\nOUTPUT(y)\ny =", "expected"),
        // Missing output name.
        ("INPUT(a)\nOUTPUT(y)\n= NAND(a, a)", "output name"),
        // Operand list collapses to nothing.
        ("INPUT(a)\nOUTPUT(y)\ny = NAND( , )", "no operands"),
        // Sequential element.
        ("INPUT(a)\nOUTPUT(q)\nq = DFF(a)", "DFF"),
        // Free-standing junk statement.
        (
            "INPUT(a)\nOUTPUT(y)\ny = INV(a)\n🦀 junk 🦀",
            "unrecognized",
        ),
        // Duplicate driver (caught at declaration, with the line).
        (
            "INPUT(a)\nOUTPUT(y)\ny = INV(a)\ny = NAND(a, a)",
            "driven twice",
        ),
        // Input redeclared.
        ("INPUT(a)\nINPUT(a)\nOUTPUT(y)\ny = INV(a)", "twice"),
    ];
    for (text, needle) in cases {
        let err =
            parse_expecting_sane_errors("t", text).expect_err(&format!("must reject:\n{text}"));
        assert!(
            err.to_string().contains(needle),
            "error for\n{text}\nmust mention `{needle}`, got: {err}"
        );
    }

    // Undeclared operand: typed, though not a positional syntax error.
    let err =
        parse_expecting_sane_errors("t", "INPUT(a)\nOUTPUT(y)\ny = NAND(a, ghost)\n").unwrap_err();
    assert!(
        matches!(err, NetlistError::UndefinedNet(ref n) if n == "ghost"),
        "got {err}"
    );

    // Unknown operator: typed.
    let err =
        parse_expecting_sane_errors("t", "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n").unwrap_err();
    assert!(matches!(err, NetlistError::UnknownCell { .. }), "got {err}");
}

/// One random corruption of `text`.
fn corrupt(text: &str, rng: &mut SplitMix64) -> String {
    let lines: Vec<&str> = text.lines().collect();
    if lines.is_empty() {
        return "INPUT".to_string();
    }
    let victim = rng.below(lines.len());
    let mut out: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
    // A palette of junk spanning control characters, multi-byte
    // sequences and format-breaking ASCII.
    const JUNK: [&str; 8] = ["\u{0}", "\u{fffd}", "🦀", "((", "))", "=", ",,,", "\t#\t("];
    match rng.below(7) {
        0 => {
            // Truncate the line at a random char boundary.
            let l = &out[victim];
            let cut = rng.below(l.chars().count().max(1));
            out[victim] = l.chars().take(cut).collect();
        }
        1 => {
            // Duplicate a line verbatim (duplicate driver / declaration).
            let dup = out[victim].clone();
            out.insert(victim, dup);
        }
        2 => {
            // Rename one operand to an undeclared net.
            out[victim] = out[victim].replacen('a', "ghost_net", 1);
        }
        3 => {
            // Splice junk into the middle of the line.
            let l = &out[victim];
            let cut = rng.below(l.chars().count().max(1));
            let head: String = l.chars().take(cut).collect();
            let tail: String = l.chars().skip(cut).collect();
            out[victim] = format!("{head}{}{tail}", JUNK[rng.below(JUNK.len())]);
        }
        4 => {
            // Delete a line outright (dangling references).
            out.remove(victim);
        }
        5 => {
            // Swap two lines (forward references are legal; driver
            // moves may not be).
            let last = out.len() - 1;
            let other = rng.below(lines.len()).min(last);
            out.swap(victim, other);
        }
        _ => {
            // Replace the line with pure junk.
            out[victim] = JUNK[rng.below(JUNK.len())].repeat(1 + rng.below(4));
        }
    }
    out.join("\n")
}

#[test]
fn fuzzed_netlists_never_panic_and_errors_stay_sane() {
    let base = write_bench(&builders::ripple_carry_adder(4));
    let mut rng = SplitMix64::new(0xBE7C_FA22);
    for case in 0..400 {
        let mut text = base.clone();
        for _ in 0..=rng.below(4) {
            text = corrupt(&text, &mut rng);
        }
        // The only contract on garbage: a typed error or a valid
        // circuit — never a panic, never a phantom line number.
        let _ = parse_expecting_sane_errors(&format!("fuzz{case}"), &text);
    }
}

#[test]
fn junk_only_inputs_are_rejected_cleanly() {
    for text in [
        "",
        "\n\n\n",
        "(((((",
        "= = = =",
        "\u{0}\u{0}\u{0}",
        "🦀",
        "INPUT OUTPUT NAND",
        "# only a comment\n",
    ] {
        // Empty and comment-only inputs produce an (empty) circuit that
        // fails structural validation or parses to nothing useful;
        // everything else errors. Either way: typed, line-sane, no
        // panic.
        let _ = parse_expecting_sane_errors("junk", text);
    }
}
