//! Property-based tests over the optimization invariants the paper's
//! method rests on: convexity, bound optimality, constraint satisfaction
//! and gradient consistency.
//!
//! Randomized with the in-tree deterministic [`SplitMix64`] generator
//! (the workspace builds offline, so no external property-testing
//! framework): each property runs over 64 seeded random cases.

use pops::core::bounds::{delay_bounds, tmin};
use pops::core::gradient::analytic_gradient;
use pops::core::sensitivity::{distribute_constraint, solve_for_sensitivity, SensitivityOptions};
use pops::netlist::rng::SplitMix64;
use pops::prelude::*;

const CASES: usize = 64;

const CELLS: [CellKind; 8] = [
    CellKind::Inv,
    CellKind::Nand2,
    CellKind::Nand3,
    CellKind::Nor2,
    CellKind::Nor3,
    CellKind::And2,
    CellKind::Or2,
    CellKind::Xor2,
];

/// Random bounded path: 2–8 stages of random cells with random off-path
/// loads and a random terminal load (mirrors the old proptest strategy).
fn random_path(rng: &mut SplitMix64) -> TimedPath {
    let n = 2 + rng.below(7);
    let stages: Vec<PathStage> = (0..n)
        .map(|_| PathStage::with_load(*rng.pick(&CELLS), rng.uniform(0.0, 40.0)))
        .collect();
    let terminal = rng.uniform(10.0, 250.0);
    TimedPath::new(stages, 2.7, terminal)
}

/// Random path plus a random feasible sizing (source drive pinned).
fn random_sized_path(rng: &mut SplitMix64) -> (TimedPath, Vec<f64>) {
    let path = random_path(rng);
    let lib = Library::cmos025();
    let mut sizes: Vec<f64> = (0..path.len())
        .map(|_| rng.uniform(1.0, 40.0) * lib.min_drive_ff())
        .collect();
    sizes[0] = path.source_drive_ff();
    (path, sizes)
}

#[test]
fn delay_is_positive_and_finite() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB0);
    for _ in 0..CASES {
        let (path, sizes) = random_sized_path(&mut rng);
        let d = path.delay(&lib, &sizes);
        assert!(d.total_ps.is_finite());
        assert!(d.total_ps > 0.0);
        for s in &d.stages {
            assert!(s.delay_ps > 0.0);
            assert!(s.transition_ps > 0.0);
        }
    }
}

#[test]
fn no_sizing_beats_tmin() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB1);
    for _ in 0..CASES {
        let (path, sizes) = random_sized_path(&mut rng);
        let best = tmin(&lib, &path);
        let probe = path.delay(&lib, &sizes).total_ps;
        assert!(
            probe >= best.delay_ps * (1.0 - 1e-6),
            "random sizing {probe} undercuts Tmin {}",
            best.delay_ps
        );
    }
}

#[test]
fn tmin_and_tmax_bracket_the_constraint_solver() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB2);
    for _ in 0..CASES {
        let path = random_path(&mut rng);
        let b = delay_bounds(&lib, &path);
        assert!(b.tmin_ps <= b.tmax_ps * (1.0 + 1e-9));
        // Any feasible constraint is met, with delay in [tmin, tc].
        for f in [1.01f64, 1.3, 2.0, 3.5] {
            let tc = f * b.tmin_ps;
            let sol = distribute_constraint(&lib, &path, tc);
            let sol = sol.expect("tc >= tmin must be feasible");
            assert!(sol.delay_ps <= tc * 1.0001);
            assert!(sol.delay_ps >= b.tmin_ps * (1.0 - 1e-6));
        }
    }
}

#[test]
fn infeasible_constraints_are_rejected() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB3);
    for _ in 0..CASES {
        let path = random_path(&mut rng);
        let b = delay_bounds(&lib, &path);
        if path.len() > 1 && b.tmax_ps > b.tmin_ps * 1.05 {
            let err = distribute_constraint(&lib, &path, 0.8 * b.tmin_ps);
            assert!(matches!(err, Err(OptimizeError::Infeasible { .. })));
        }
    }
}

#[test]
fn sensitivity_sweep_is_monotone() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB4);
    for _ in 0..CASES {
        let path = random_path(&mut rng);
        let opts = SensitivityOptions::default();
        let mut last_delay = f64::NEG_INFINITY;
        let mut last_area = f64::INFINITY;
        // a descending from 0: delay grows, area shrinks.
        for a in [0.0f64, -0.05, -0.3, -1.5, -8.0, -50.0] {
            let p = solve_for_sensitivity(&lib, &path, a, &opts);
            assert!(p.delay_ps >= last_delay - 1e-6);
            assert!(p.total_cin_ff <= last_area + 1e-6);
            last_delay = p.delay_ps;
            last_area = p.total_cin_ff;
        }
    }
}

#[test]
fn analytic_gradient_matches_numeric() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB5);
    for _ in 0..CASES {
        let (path, sizes) = random_sized_path(&mut rng);
        let ana = analytic_gradient(&lib, &path, &sizes);
        let num = path.gradient(&lib, &sizes);
        let scale = num.iter().fold(1e-6f64, |m, g| m.max(g.abs()));
        for i in 1..path.len() {
            assert!(
                (ana[i] - num[i]).abs() <= 5e-3 * scale,
                "stage {i}: {} vs {}",
                ana[i],
                num[i]
            );
        }
    }
}

#[test]
fn delay_is_monotone_in_terminal_load() {
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB6);
    for _ in 0..CASES {
        let n = 2 + rng.below(5);
        let stages: Vec<PathStage> = (0..n).map(|_| PathStage::new(*rng.pick(&CELLS))).collect();
        let t1 = rng.uniform(10.0, 100.0);
        let extra = rng.uniform(1.0, 200.0);
        let p1 = TimedPath::new(stages.clone(), 2.7, t1);
        let p2 = TimedPath::new(stages, 2.7, t1 + extra);
        let sizes = p1.min_sizes(&lib);
        assert!(p2.delay(&lib, &sizes).total_ps > p1.delay(&lib, &sizes).total_ps);
    }
}

#[test]
fn path_delay_is_unimodal_along_random_coordinates() {
    // The paper's convexity claim (§2.2) is exact for the simplified
    // A·C_L/C_IN form; the full model's Miller factor bends it into
    // *quasi*-convexity. The optimizers only need unimodality (link
    // equations + golden sections), which is what we assert: once the
    // delay starts rising along a coordinate, it never falls again.
    let lib = Library::cmos025();
    let mut rng = SplitMix64::new(0xB7);
    for _ in 0..CASES {
        let (path, sizes) = random_sized_path(&mut rng);
        if path.len() < 2 {
            continue;
        }
        let i = 1 + rng.below(path.len() - 1);
        let mut probe = sizes.clone();
        let ys: Vec<f64> = (0..24)
            .map(|k| {
                let f = 0.4 * 1.35f64.powi(k);
                probe[i] = (sizes[i] * f).max(lib.min_drive_ff());
                path.delay(&lib, &probe).total_ps
            })
            .collect();
        let tol = 1e-9;
        let mut rising = false;
        for w in ys.windows(2) {
            if rising {
                assert!(
                    w[1] >= w[0] * (1.0 - tol),
                    "delay fell after rising: {} -> {}",
                    w[0],
                    w[1]
                );
            } else if w[1] > w[0] * (1.0 + tol) {
                rising = true;
            }
        }
    }
}
