//! Property-based tests over the optimization invariants the paper's
//! method rests on: convexity, bound optimality, constraint satisfaction
//! and gradient consistency.

use proptest::prelude::*;

use pops::core::bounds::{delay_bounds, tmin};
use pops::core::gradient::analytic_gradient;
use pops::core::sensitivity::{
    distribute_constraint, solve_for_sensitivity, SensitivityOptions,
};
use pops::prelude::*;

fn arb_cell() -> impl Strategy<Value = CellKind> {
    prop::sample::select(vec![
        CellKind::Inv,
        CellKind::Nand2,
        CellKind::Nand3,
        CellKind::Nor2,
        CellKind::Nor3,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Xor2,
    ])
}

prop_compose! {
    fn arb_path()(
        cells in prop::collection::vec(arb_cell(), 2..9),
        offs in prop::collection::vec(0.0f64..40.0, 8),
        terminal in 10.0f64..250.0,
    ) -> TimedPath {
        let stages: Vec<PathStage> = cells
            .iter()
            .enumerate()
            .map(|(i, &c)| PathStage::with_load(c, offs[i % offs.len()]))
            .collect();
        TimedPath::new(stages, 2.7, terminal)
    }
}

prop_compose! {
    fn arb_sized_path()(path in arb_path())(
        factors in prop::collection::vec(1.0f64..40.0, path.len()),
        path in Just(path),
    ) -> (TimedPath, Vec<f64>) {
        let lib = Library::cmos025();
        let mut sizes: Vec<f64> = factors.iter().map(|f| f * lib.min_drive_ff()).collect();
        sizes[0] = path.source_drive_ff();
        (path, sizes)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn delay_is_positive_and_finite((path, sizes) in arb_sized_path()) {
        let lib = Library::cmos025();
        let d = path.delay(&lib, &sizes);
        prop_assert!(d.total_ps.is_finite());
        prop_assert!(d.total_ps > 0.0);
        for s in &d.stages {
            prop_assert!(s.delay_ps > 0.0);
            prop_assert!(s.transition_ps > 0.0);
        }
    }

    #[test]
    fn no_sizing_beats_tmin((path, sizes) in arb_sized_path()) {
        let lib = Library::cmos025();
        let best = tmin(&lib, &path);
        let probe = path.delay(&lib, &sizes).total_ps;
        prop_assert!(
            probe >= best.delay_ps * (1.0 - 1e-6),
            "random sizing {probe} undercuts Tmin {}", best.delay_ps
        );
    }

    #[test]
    fn tmin_and_tmax_bracket_the_constraint_solver(path in arb_path()) {
        let lib = Library::cmos025();
        let b = delay_bounds(&lib, &path);
        prop_assert!(b.tmin_ps <= b.tmax_ps * (1.0 + 1e-9));
        // Any feasible constraint is met, with delay in [tmin, tc].
        for f in [1.01f64, 1.3, 2.0, 3.5] {
            let tc = f * b.tmin_ps;
            let sol = distribute_constraint(&lib, &path, tc);
            let sol = sol.expect("tc >= tmin must be feasible");
            prop_assert!(sol.delay_ps <= tc * 1.0001);
            prop_assert!(sol.delay_ps >= b.tmin_ps * (1.0 - 1e-6));
        }
    }

    #[test]
    fn infeasible_constraints_are_rejected(path in arb_path()) {
        let lib = Library::cmos025();
        let b = delay_bounds(&lib, &path);
        if path.len() > 1 && b.tmax_ps > b.tmin_ps * 1.05 {
            let err = distribute_constraint(&lib, &path, 0.8 * b.tmin_ps);
            let rejected = matches!(err, Err(OptimizeError::Infeasible { .. }));
            prop_assert!(rejected);
        }
    }

    #[test]
    fn sensitivity_sweep_is_monotone(path in arb_path()) {
        let lib = Library::cmos025();
        let opts = SensitivityOptions::default();
        let mut last_delay = f64::NEG_INFINITY;
        let mut last_area = f64::INFINITY;
        // a descending from 0: delay grows, area shrinks.
        for a in [0.0f64, -0.05, -0.3, -1.5, -8.0, -50.0] {
            let p = solve_for_sensitivity(&lib, &path, a, &opts);
            prop_assert!(p.delay_ps >= last_delay - 1e-6);
            prop_assert!(p.total_cin_ff <= last_area + 1e-6);
            last_delay = p.delay_ps;
            last_area = p.total_cin_ff;
        }
    }

    #[test]
    fn analytic_gradient_matches_numeric((path, sizes) in arb_sized_path()) {
        let lib = Library::cmos025();
        let ana = analytic_gradient(&lib, &path, &sizes);
        let num = path.gradient(&lib, &sizes);
        let scale = num.iter().fold(1e-6f64, |m, g| m.max(g.abs()));
        for i in 1..path.len() {
            prop_assert!(
                (ana[i] - num[i]).abs() <= 5e-3 * scale,
                "stage {i}: {} vs {}", ana[i], num[i]
            );
        }
    }

    #[test]
    fn delay_is_monotone_in_terminal_load(
        cells in prop::collection::vec(arb_cell(), 2..7),
        t1 in 10.0f64..100.0,
        extra in 1.0f64..200.0,
    ) {
        let lib = Library::cmos025();
        let stages: Vec<PathStage> = cells.iter().map(|&c| PathStage::new(c)).collect();
        let p1 = TimedPath::new(stages.clone(), 2.7, t1);
        let p2 = TimedPath::new(stages, 2.7, t1 + extra);
        let sizes = p1.min_sizes(&lib);
        prop_assert!(
            p2.delay(&lib, &sizes).total_ps > p1.delay(&lib, &sizes).total_ps
        );
    }

    #[test]
    fn path_delay_is_unimodal_along_random_coordinates(
        (path, sizes) in arb_sized_path(),
        coord in 0usize..8,
    ) {
        // The paper's convexity claim (§2.2) is exact for the simplified
        // A·C_L/C_IN form; the full model's Miller factor bends it into
        // *quasi*-convexity. The optimizers only need unimodality (link
        // equations + golden sections), which is what we assert: once the
        // delay starts rising along a coordinate, it never falls again.
        let lib = Library::cmos025();
        if path.len() < 2 { return Ok(()); }
        let i = 1 + coord % (path.len() - 1);
        let mut probe = sizes.clone();
        let ys: Vec<f64> = (0..24)
            .map(|k| {
                let f = 0.4 * 1.35f64.powi(k);
                probe[i] = (sizes[i] * f).max(lib.min_drive_ff());
                path.delay(&lib, &probe).total_ps
            })
            .collect();
        let tol = 1e-9;
        let mut rising = false;
        for w in ys.windows(2) {
            if rising {
                prop_assert!(
                    w[1] >= w[0] * (1.0 - tol),
                    "delay fell after rising: {} -> {}", w[0], w[1]
                );
            } else if w[1] > w[0] * (1.0 + tol) {
                rising = true;
            }
        }
    }
}
