//! Golden regression for `k_most_critical_paths`: the top-5 paths on
//! c1908 / c6288 / c7552 at minimum sizing under default options are
//! pinned — weight to 1e-9 ps, path length, endpoint net id and a
//! fingerprint of the exact gate sequence — so a change to the
//! completion bounds (in particular the incrementally maintained ones)
//! can never silently reorder, retarget or drop paths.
//!
//! If an *intentional* model or ranking change moves these values,
//! regenerate them with the snippet in this file's git history and
//! update the tables alongside the change that explains why.

use pops::prelude::*;
use pops::sta::path_weight_ps;
use pops::sta::TimingGraph;

/// Pinned facts about one ranked path: weight (ps), gate count,
/// endpoint output net index, FNV-1a-style fingerprint of the gate
/// index sequence.
type Golden = (f64, usize, usize, u64);

fn fingerprint(gates: &[GateId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for g in gates {
        h ^= g.index() as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

const GOLDEN_C1908: [Golden; 5] = [
    (9401.125950855801, 42, 902, 0x5723cb22dbb8bf01),
    (9_393.772_013_569_11, 43, 903, 0x18292a3bb6612dd1),
    (9391.696448725226, 44, 911, 0x34c6c8080a672b47),
    (9388.332682043001, 42, 902, 0xb2bab5072d2d009b),
    (9_380.978_744_756_31, 43, 903, 0xe7126b0f0b7ede03),
];

const GOLDEN_C6288: [Golden; 5] = [
    (31117.902578996207, 116, 2436, 0x43e02ac5f57c9207),
    (31116.922891496208, 116, 2436, 0x4d9423799db86f6c),
    (31110.457918146218, 116, 2436, 0x537b0cafc0a9c896),
    (31_109.478_230_646_22, 116, 2436, 0xd484adbeebd93ac9),
    (31_074.299_922_769_89, 116, 2445, 0xadb6dac6b0a72920),
];

const GOLDEN_C7552: [Golden; 5] = [
    (26601.311385324334, 47, 3652, 0x29c81af3e2e12638),
    (26566.471724631563, 47, 3710, 0x29c764f3e2dff0f6),
    (26548.081792250865, 45, 3514, 0xbbcd02ce69f75f13),
    (26548.081792250865, 45, 3562, 0xbbccb2ce69f6d723),
    (26529.158158197995, 47, 3687, 0x288bf5f3e1ceb2ec),
];

fn check<V: pops::sta::TimingView + ?Sized>(
    name: &str,
    backend: &str,
    circuit: &Circuit,
    view: &V,
    golden: &[Golden; 5],
) {
    let paths = k_most_critical_paths(circuit, view, 5);
    assert_eq!(paths.len(), 5, "{name}/{backend}: path count");
    for (i, (path, &(weight, len, end_net, fp))) in paths.iter().zip(golden).enumerate() {
        let w = path_weight_ps(view, path);
        assert!(
            (w - weight).abs() < 1e-9,
            "{name}/{backend} path {i}: weight {w} vs pinned {weight}"
        );
        assert_eq!(path.gates.len(), len, "{name}/{backend} path {i}: length");
        let last = *path.gates.last().unwrap();
        assert_eq!(
            circuit.gate(last).output().index(),
            end_net,
            "{name}/{backend} path {i}: endpoint net"
        );
        assert_eq!(
            fingerprint(&path.gates),
            fp,
            "{name}/{backend} path {i}: gate sequence changed"
        );
    }
}

fn golden_case(name: &str, golden: &[Golden; 5]) {
    let lib = Library::cmos025();
    let circuit = suite::circuit(name).unwrap();
    let sizing = Sizing::minimum(&circuit, &lib);

    // One-shot backend: completion bounds derived from scratch.
    let report = analyze(&circuit, &lib, &sizing).unwrap();
    check(name, "report", &circuit, &report, golden);

    // Incremental backend with maintained bounds — including after a
    // resize/revert walk over the top path's cones, which must restore
    // the exact ranking.
    let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    check(name, "graph", &circuit, &graph, golden);
    let victims: Vec<GateId> = graph
        .critical_path()
        .gates
        .iter()
        .copied()
        .take(8)
        .collect();
    for &g in &victims {
        let orig = graph.sizing().cin_ff(g);
        graph.resize_gate(g, 4.0 * orig);
        graph.resize_gate(g, orig);
    }
    check(name, "graph+walk", &circuit, &graph, golden);
}

#[test]
fn c1908_top5_paths_are_pinned() {
    golden_case("c1908", &GOLDEN_C1908);
}

#[test]
fn c6288_top5_paths_are_pinned() {
    golden_case("c6288", &GOLDEN_C6288);
}

#[test]
fn c7552_top5_paths_are_pinned() {
    golden_case("c7552", &GOLDEN_C7552);
}
