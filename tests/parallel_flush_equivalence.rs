//! Parallel ≡ sequential: the level-synchronized worker-pool flush
//! must be **bit-identical** to the single-cursor sequential drain on
//! every queryable value, under any interleaving of mutations — both
//! paths run the same per-gate kernel over the same rank-major slabs,
//! so equality is structural, and this suite proves it differentially
//! anyway: twin graphs (threads 1 / 2 / 4, parallel forced down to
//! zero-gate thresholds) receive identical resize/surgery/option/
//! constraint bursts and must never diverge by a single bit, with a
//! from-scratch eager pass anchoring the whole set.
//!
//! Also covered here: validity and determinism of the synthetic
//! scaling fabrics the large-circuit rows build on, the loads-only
//! `net_load_ff` settle (answers without flushing, never corrupts the
//! pre-edit load baseline), and the sweep-budget extremes (forced
//! drain vs forced sweep) converging to the same bits.
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::rng::SplitMix64;
use pops::netlist::surgery::{EditOp, EditPlan};
use pops::netlist::{builders, suite};
use pops::prelude::*;
use pops::sta::analysis::{analyze_with, AnalyzeOptions, EdgeDir};
use pops::sta::TimingGraph;

/// Every queryable value of `a` and `b` is bit-identical (the graphs
/// must be timing the same circuit).
fn assert_graphs_bit_equal(a: &TimingGraph, b: &TimingGraph, label: &str) {
    let circuit = a.circuit();
    assert_eq!(
        a.critical_delay_ps().to_bits(),
        b.critical_delay_ps().to_bits(),
        "{label}: critical delay diverged"
    );
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                a.arrival_ps(net, dir).to_bits(),
                b.arrival_ps(net, dir).to_bits(),
                "{label}: arrival of {net} {dir:?}"
            );
            assert_eq!(
                a.slope_ps(net, dir).to_bits(),
                b.slope_ps(net, dir).to_bits(),
                "{label}: slope of {net} {dir:?}"
            );
            assert_eq!(
                a.slack_ps(net, dir).to_bits(),
                b.slack_ps(net, dir).to_bits(),
                "{label}: slack of {net} {dir:?}"
            );
        }
        assert_eq!(
            a.net_load_ff(net).to_bits(),
            b.net_load_ff(net).to_bits(),
            "{label}: load of {net}"
        );
    }
    for g in circuit.gate_ids() {
        assert_eq!(
            a.gate_delay_worst_ps(g).to_bits(),
            b.gate_delay_worst_ps(g).to_bits(),
            "{label}: worst delay of {g}"
        );
        assert_eq!(
            a.completion_ps(g).to_bits(),
            b.completion_ps(g).to_bits(),
            "{label}: completion bound of {g}"
        );
    }
    assert_eq!(
        a.worst_slack_overall_ps().map(f64::to_bits),
        b.worst_slack_overall_ps().map(f64::to_bits),
        "{label}: design-worst slack diverged"
    );
    assert_eq!(
        a.critical_path().gates,
        b.critical_path().gates,
        "{label}: critical path diverged"
    );
}

/// The eager anchor: the first twin also matches a from-scratch pass
/// (transitively pinning every twin to the eager semantics).
fn assert_matches_eager(graph: &TimingGraph, lib: &Library, label: &str) {
    let fresh =
        analyze_with(graph.circuit(), lib, graph.sizing(), graph.options()).expect("acyclic");
    assert_eq!(
        graph.critical_delay_ps().to_bits(),
        fresh.critical_delay_ps().to_bits(),
        "{label}: diverged from the eager pass"
    );
}

/// A buffer-insertion plan on a random fanout-heavy driven net of the
/// current circuit (identical across twins — they evolve in lockstep).
fn random_buffer_plan(
    graph: &TimingGraph,
    lib: &Library,
    rng: &mut SplitMix64,
) -> Option<EditPlan> {
    let circuit = graph.circuit();
    let candidates: Vec<_> = circuit
        .net_ids()
        .filter(|&n| circuit.driver_gate(n).is_some() && circuit.net(n).fanout() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let net = *rng.pick(&candidates);
    let loads = circuit.net(net).loads()[1..].to_vec();
    if loads.is_empty() {
        return None;
    }
    Some(
        vec![EditOp::InsertBuffer {
            net,
            loads,
            stage_cin_ff: [
                lib.min_drive_ff() * (1.0 + rng.next_f64()),
                lib.min_drive_ff() * (2.0 + 4.0 * rng.next_f64()),
            ],
        }]
        .into(),
    )
}

/// Drive `threads`-way twins through `steps` random mutation bursts;
/// the parallel twins force the pool even on tiny circuits
/// (`set_parallel_threshold(0)`).
fn random_parallel_twin_sequence(circuit: Circuit, seed: u64, steps: usize, check_every: usize) {
    let lib = Library::cmos025();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut seq = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
    seq.set_threads(1);
    let mut twins: Vec<TimingGraph> = [2usize, 4]
        .iter()
        .map(|&t| {
            let mut g = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            g.set_threads(t);
            g.set_parallel_threshold(0);
            g
        })
        .collect();

    let t0 = seq.critical_delay_ps();
    seq.set_constraint(0.9 * t0);
    for g in &mut twins {
        g.set_constraint(0.9 * t0);
    }

    let mut rng = SplitMix64::new(seed);
    let cref = lib.min_drive_ff();
    for step in 0..steps {
        let gates: Vec<GateId> = seq.circuit().gate_ids().collect();
        match rng.below(8) {
            0 => {
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(8))
                    .map(|_| {
                        let g = *rng.pick(&gates);
                        (g, cref * (1.0 + 25.0 * rng.next_f64()))
                    })
                    .collect();
                seq.resize_gates(batch.clone());
                for g in &mut twins {
                    g.resize_gates(batch.clone());
                }
            }
            1 => {
                // Structural surgery: re-levels, re-ranks and re-slots
                // under pending seeds in every twin.
                if let Some(plan) = random_buffer_plan(&seq, &lib, &mut rng) {
                    seq.apply_edits(&plan).expect("valid edit");
                    for g in &mut twins {
                        g.apply_edits(&plan).expect("valid edit");
                    }
                }
            }
            2 => {
                // Option change: the full-rescan path (and usually the
                // budgeted full-sweep cut-over, i.e. the parallel
                // `eval_range` dispatch).
                let options = AnalyzeOptions {
                    po_load_ff: 5.0 + 40.0 * rng.next_f64(),
                    input_transition_ps: 20.0 + 100.0 * rng.next_f64(),
                };
                seq.set_options(&options);
                for g in &mut twins {
                    g.set_options(&options);
                }
            }
            3 => {
                let tc = t0 * (0.7 + 0.6 * rng.next_f64());
                seq.set_constraint(tc);
                for g in &mut twins {
                    g.set_constraint(tc);
                }
            }
            _ => {
                let g = *rng.pick(&gates);
                let cin = cref * (1.0 + 25.0 * rng.next_f64());
                seq.resize_gate(g, cin);
                for t in &mut twins {
                    t.resize_gate(g, cin);
                }
            }
        }
        if step % check_every == check_every - 1 {
            for (i, g) in twins.iter().enumerate() {
                assert_graphs_bit_equal(&seq, g, &format!("step {step}, twin {i}"));
            }
            assert_matches_eager(&seq, &lib, &format!("step {step}"));
        }
    }
    for (i, g) in twins.iter().enumerate() {
        assert_graphs_bit_equal(&seq, g, &format!("final, twin {i}"));
        g.verify_state()
            .unwrap_or_else(|e| panic!("twin {i} failed the deep-consistency audit: {e}"));
    }
    assert_matches_eager(&seq, &lib, "final");
    seq.verify_state()
        .unwrap_or_else(|e| panic!("sequential twin failed the deep-consistency audit: {e}"));
}

/// Backward-focused twins: every burst is *immediately* followed by
/// backward queries on every twin, so `flush_required` and
/// `flush_completion` fire once per burst — in whatever dirty-state
/// mix the burst schedule leaves behind — instead of only at the
/// periodic full-graph checks. Constraint bursts saturate the backward
/// dirty sets, so the next query runs the gate-centric full-sweep
/// path (the parallel descending-barrier dispatch on the pool twins).
fn random_backward_twin_sequence(circuit: Circuit, seed: u64, steps: usize, check_every: usize) {
    let lib = Library::cmos025();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut seq = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
    seq.set_threads(1);
    let mut twins: Vec<TimingGraph> = [2usize, 4]
        .iter()
        .map(|&t| {
            let mut g = TimingGraph::new(&circuit, &lib, &sizing).expect("acyclic");
            g.set_threads(t);
            g.set_parallel_threshold(0);
            g
        })
        .collect();

    let t0 = seq.critical_delay_ps();
    seq.set_constraint(0.92 * t0);
    for g in &mut twins {
        g.set_constraint(0.92 * t0);
    }

    let mut rng = SplitMix64::new(seed);
    let cref = lib.min_drive_ff();
    for step in 0..steps {
        let gates: Vec<GateId> = seq.circuit().gate_ids().collect();
        match rng.below(6) {
            0 => {
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(8))
                    .map(|_| {
                        let g = *rng.pick(&gates);
                        (g, cref * (1.0 + 25.0 * rng.next_f64()))
                    })
                    .collect();
                seq.resize_gates(batch.clone());
                for g in &mut twins {
                    g.resize_gates(batch.clone());
                }
            }
            1 => {
                if let Some(plan) = random_buffer_plan(&seq, &lib, &mut rng) {
                    seq.apply_edits(&plan).expect("valid edit");
                    for g in &mut twins {
                        g.apply_edits(&plan).expect("valid edit");
                    }
                }
            }
            2 => {
                // Wholesale backward invalidation: the queries below
                // run the full-sweep flush path.
                let tc = t0 * (0.7 + 0.6 * rng.next_f64());
                seq.set_constraint(tc);
                for g in &mut twins {
                    g.set_constraint(tc);
                }
            }
            _ => {
                let g = *rng.pick(&gates);
                let cin = cref * (1.0 + 25.0 * rng.next_f64());
                seq.resize_gate(g, cin);
                for t in &mut twins {
                    t.resize_gate(g, cin);
                }
            }
        }
        // Flush both backward directions on every twin, every burst.
        let worst = seq.worst_slack_overall_ps().map(f64::to_bits);
        let probe_net = *rng.pick(&seq.circuit().net_ids().collect::<Vec<_>>());
        let probe_gate = *rng.pick(&gates);
        let slack = [
            seq.slack_ps(probe_net, EdgeDir::Rising).to_bits(),
            seq.slack_ps(probe_net, EdgeDir::Falling).to_bits(),
        ];
        let completion = seq.completion_ps(probe_gate).to_bits();
        for (i, g) in twins.iter().enumerate() {
            assert_eq!(
                g.worst_slack_overall_ps().map(f64::to_bits),
                worst,
                "step {step}, twin {i}: design-worst slack diverged"
            );
            assert_eq!(
                [
                    g.slack_ps(probe_net, EdgeDir::Rising).to_bits(),
                    g.slack_ps(probe_net, EdgeDir::Falling).to_bits(),
                ],
                slack,
                "step {step}, twin {i}: slack of {probe_net} diverged"
            );
            assert_eq!(
                g.completion_ps(probe_gate).to_bits(),
                completion,
                "step {step}, twin {i}: completion of {probe_gate} diverged"
            );
        }
        if step % check_every == check_every - 1 {
            for (i, g) in twins.iter().enumerate() {
                assert_graphs_bit_equal(&seq, g, &format!("step {step}, twin {i}"));
            }
            assert_matches_eager(&seq, &lib, &format!("step {step}"));
        }
    }
    for (i, g) in twins.iter().enumerate() {
        assert_graphs_bit_equal(&seq, g, &format!("final, twin {i}"));
        g.verify_state()
            .unwrap_or_else(|e| panic!("twin {i} failed the deep-consistency audit: {e}"));
    }
    assert_matches_eager(&seq, &lib, "final");
    seq.verify_state()
        .unwrap_or_else(|e| panic!("sequential twin failed the deep-consistency audit: {e}"));
}

#[test]
fn fpd_parallel_matches_sequential() {
    let c = suite::circuit("fpd").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_F00D, 32, 4);
}

#[test]
fn c432_parallel_matches_sequential() {
    let c = suite::circuit("c432").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_0432, 32, 4);
}

#[test]
fn c880_parallel_matches_sequential() {
    let c = suite::circuit("c880").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_0880, 24, 4);
}

#[test]
fn c1908_parallel_matches_sequential() {
    let c = suite::circuit("c1908").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_1908, 24, 4);
}

#[test]
fn c6288_parallel_matches_sequential() {
    let c = suite::circuit("c6288").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_6288, 9, 3);
}

#[test]
fn c7552_parallel_matches_sequential() {
    let c = suite::circuit("c7552").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_7552, 9, 3);
}

#[test]
fn synth10k_parallel_matches_sequential() {
    // Wide random-logic levels (hundreds of gates) drive the chunked
    // pool dispatches (`eval_list`/`eval_range`), which the narrow
    // suite circuits mostly bypass through the inline-straggler path.
    let c = suite::scaling_circuit("synth10k").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_E010, 6, 3);
}

#[test]
fn fpd_backward_parallel_matches_sequential() {
    let c = suite::circuit("fpd").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_F00D, 24, 4);
}

#[test]
fn c432_backward_parallel_matches_sequential() {
    let c = suite::circuit("c432").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_0432, 24, 4);
}

#[test]
fn c880_backward_parallel_matches_sequential() {
    let c = suite::circuit("c880").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_0880, 16, 4);
}

#[test]
fn c1908_backward_parallel_matches_sequential() {
    let c = suite::circuit("c1908").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_1908, 16, 4);
}

#[test]
fn c6288_backward_parallel_matches_sequential() {
    let c = suite::circuit("c6288").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_6288, 8, 4);
}

#[test]
fn c7552_backward_parallel_matches_sequential() {
    let c = suite::circuit("c7552").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_7552, 8, 4);
}

#[test]
fn synth10k_backward_parallel_matches_sequential() {
    // Wide levels drive the chunked backward dispatches
    // (`eval_required_list` / `sweep_gate_range`), which the narrow
    // suite circuits mostly bypass through the inline-straggler path.
    let c = suite::scaling_circuit("synth10k").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_E010, 5, 3);
}

#[test]
#[ignore = "expensive: 100k-gate fabric; run with --ignored (CI release job does)"]
fn synth100k_backward_parallel_matches_sequential() {
    let c = suite::scaling_circuit("synth100k").unwrap();
    random_backward_twin_sequence(c, 0xBAC4_E100, 3, 2);
}

#[test]
fn backward_full_sweep_fires_and_is_bit_identical() {
    // A constraint change saturates the backward dirty sets, so the
    // next slack query must take the gate-centric full-sweep path —
    // proven by the reevaluation count covering every net — and the
    // forced-pool twins must land on the same bits through their
    // parallel descending-barrier sweep.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut seq = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    seq.set_threads(1);
    let mut twins: Vec<TimingGraph> = [2usize, 4]
        .iter()
        .map(|&t| {
            let mut g = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
            g.set_threads(t);
            g.set_parallel_threshold(0);
            g
        })
        .collect();
    let t0 = seq.critical_delay_ps();
    let n_nets = circuit.net_count();
    for tc in [0.9 * t0, 0.8 * t0, 1.1 * t0] {
        seq.set_constraint(tc);
        for g in &mut twins {
            g.set_constraint(tc);
        }
        let before = seq.stats().required_reevaluated;
        let worst = seq.worst_slack_overall_ps().map(f64::to_bits);
        assert!(
            seq.stats().required_reevaluated - before >= n_nets,
            "a post-constraint flush must run the full sweep"
        );
        for (i, g) in twins.iter().enumerate() {
            assert_eq!(
                g.worst_slack_overall_ps().map(f64::to_bits),
                worst,
                "tc {tc}: twin {i} diverged through the parallel full sweep"
            );
            assert_graphs_bit_equal(&seq, g, &format!("tc {tc}, twin {i}"));
        }
    }
    assert_matches_eager(&seq, &lib, "post-sweep");
}

#[test]
fn adaptive_cutover_fires_on_spread_seeds_and_keeps_bits() {
    // An eighth of the fabric's gates resized, spread evenly: the seed
    // *count* sits far below the static ¾-rank forward budget, but the
    // fanout closure is essentially the whole circuit — the level-span
    // estimator must cut over to the full sweep (every gate evaluated,
    // zero convergence cuts), and a pure-drain `(1,1)` twin proves the
    // cut-over changes scheduling only, never bits.
    let lib = Library::cmos025();
    let circuit = suite::scaling_circuit("synth10k").unwrap();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut graph = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    let mut drain = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    drain.set_sweep_budgets((1, 1), (1, 1));
    let t0 = graph.critical_delay_ps();
    let _ = drain.critical_delay_ps();
    graph.set_constraint(0.9 * t0);
    drain.set_constraint(0.9 * t0);
    let _ = graph.worst_slack_overall_ps();
    let _ = drain.worst_slack_overall_ps();

    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let n_gates = gates.len();
    let cref = lib.min_drive_ff();
    let batch: Vec<(GateId, f64)> = gates
        .iter()
        .step_by(8)
        .enumerate()
        .map(|(i, &g)| (g, cref * (1.5 + 0.01 * (i % 7) as f64)))
        .collect();
    assert!(batch.len() * 4 >= n_gates / 2, "spread batch too sparse");
    graph.resize_gates(batch.clone());
    drain.resize_gates(batch);

    let before = graph.stats();
    let d = graph.critical_delay_ps();
    let after = graph.stats();
    assert_eq!(
        after.gates_reevaluated - before.gates_reevaluated,
        n_gates,
        "the spread union must cut over to the full sweep"
    );
    assert_eq!(
        after.converged_early, before.converged_early,
        "a full sweep takes no convergence cuts"
    );
    assert_eq!(
        d.to_bits(),
        drain.critical_delay_ps().to_bits(),
        "cut-over must not change the bits"
    );
    assert_eq!(
        graph.worst_slack_overall_ps().map(f64::to_bits),
        drain.worst_slack_overall_ps().map(f64::to_bits),
        "backward state must agree after the adaptive forward sweep"
    );
    assert_matches_eager(&graph, &lib, "adaptive cut-over");

    // A single-gate probe afterwards stays on the drain: the estimator
    // is guarded out below 32 seeds, and one cone converges early.
    graph.resize_gate(gates[n_gates / 2], 2.0 * cref);
    let before = graph.stats();
    let _ = graph.critical_delay_ps();
    let after = graph.stats();
    assert!(
        after.gates_reevaluated - before.gates_reevaluated < n_gates,
        "a probe cone must not trigger the adaptive sweep"
    );
}

#[test]
fn gate_delay_queries_settle_without_flushing() {
    // `gate_delay_worst_ps` under pure-resize seeds: answered by the
    // flushless settle — correct value, no forward flush — so a K=1
    // resize/probe loop no longer drains the whole merged union per
    // probe. The settled answers must be bit-identical to the slab
    // values the next flushing query produces.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    graph.resize_gate(gates[gates.len() / 3], 5.0 * lib.min_drive_ff());

    let before = graph.stats();
    let settled: Vec<u64> = gates
        .iter()
        .map(|&g| graph.gate_delay_worst_ps(g).to_bits())
        .collect();
    let mid = graph.stats();
    assert_eq!(
        mid.forward_flushes, before.forward_flushes,
        "a worst-delay probe under resize seeds must not flush"
    );
    assert_eq!(
        mid.gate_delay_settles,
        before.gate_delay_settles + gates.len(),
        "every probe takes the settle path"
    );

    let _ = graph.critical_delay_ps();
    assert_eq!(graph.stats().forward_flushes, before.forward_flushes + 1);
    for (i, &g) in gates.iter().enumerate() {
        assert_eq!(
            graph.gate_delay_worst_ps(g).to_bits(),
            settled[i],
            "settled and flushed worst delay of {g} must agree"
        );
    }
    // Structural seeds (surgery) disable the settle: the probe flushes.
    let mut rng = SplitMix64::new(0x5E77_1E00);
    let plan = random_buffer_plan(&graph, &lib, &mut rng).unwrap();
    graph.apply_edits(&plan).unwrap();
    let before = graph.stats();
    let _ = graph.gate_delay_worst_ps(gates[0]);
    let after = graph.stats();
    assert_eq!(after.forward_flushes, before.forward_flushes + 1);
    assert_eq!(after.gate_delay_settles, before.gate_delay_settles);
    assert_matches_eager(&graph, &lib, "after settle round-trips");
}

#[test]
#[ignore = "expensive: 100k-gate fabric; run with --ignored (CI release job does)"]
fn synth100k_parallel_matches_sequential() {
    // The headline class: a ≥100k-gate fabric under mixed bursts. The
    // full per-net bit sweep per check is what makes this expensive,
    // not the flushes.
    let c = suite::scaling_circuit("synth100k").unwrap();
    random_parallel_twin_sequence(c, 0x9A51_E100, 4, 2);
}

#[test]
fn scaling_fabrics_are_valid_and_deterministic() {
    {
        let class = "synth10k";
        let spec = suite::scaling_class(class).unwrap();
        let c = suite::scaling_circuit(class).unwrap();
        assert_eq!(
            c.gate_count(),
            spec.target_gates,
            "{class}: generator must hit the target exactly"
        );
        // Structurally sound: acyclic, fully driven, realistically deep.
        let topo = c.topo_order().expect("fabric must be acyclic");
        assert_eq!(topo.len(), c.gate_count());
        let levels = c.logic_levels().expect("fabric must level");
        let depth = levels.iter().copied().max().unwrap_or(0);
        assert!(depth >= 16, "{class}: implausibly shallow (depth {depth})");
        assert!(!c.primary_outputs().is_empty(), "{class}: no outputs");
        // Deterministic: the same class builds bit-identical timing.
        let c2 = suite::scaling_circuit(class).unwrap();
        assert_eq!(c.gate_count(), c2.gate_count());
        assert_eq!(c.net_count(), c2.net_count());
        let lib = Library::cmos025();
        let t1 = analyze_with(
            &c,
            &lib,
            &Sizing::minimum(&c, &lib),
            &AnalyzeOptions::default(),
        )
        .unwrap();
        let t2 = analyze_with(
            &c2,
            &lib,
            &Sizing::minimum(&c2, &lib),
            &AnalyzeOptions::default(),
        )
        .unwrap();
        assert_eq!(
            t1.critical_delay_ps().to_bits(),
            t2.critical_delay_ps().to_bits(),
            "{class}: generator must be deterministic"
        );
    }
    // The component builders compose the fabric; sanity-check them at
    // sizes the netlist unit tests do not cover.
    let csa = builders::carry_select_adder(64, 8);
    assert!(csa.topo_order().is_ok());
    let mult = builders::array_multiplier(16);
    assert!(mult.topo_order().is_ok());
    let cloud = builders::random_logic_cloud(64, 5_000, 0xC10D_5EED);
    assert_eq!(cloud.gate_count(), 5_000);
    assert!(cloud.topo_order().is_ok());
}

#[test]
fn net_load_queries_settle_without_flushing() {
    // `net_load_ff` under pending seeds: answered by the loads-only
    // settle — correct value, no forward flush, no arc work — and the
    // cached (pre-mutation) load baseline survives for the flush-time
    // load scans.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    let g = circuit.gate_ids().nth(circuit.gate_count() / 3).unwrap();
    let fanin_net = circuit.gate(g).inputs()[0];
    graph.resize_gate(g, 5.0 * lib.min_drive_ff());

    let before = graph.stats();
    let lazy_load = graph.net_load_ff(fanin_net);
    let mid = graph.stats();
    assert_eq!(
        mid.forward_flushes, before.forward_flushes,
        "a load query must not flush"
    );
    assert_eq!(
        mid.gates_reevaluated, before.gates_reevaluated,
        "a load query must not evaluate arcs"
    );
    assert_eq!(mid.load_only_settles, before.load_only_settles + 1);

    // Same bits as the settled state the next flushing query produces,
    // and the flush itself (driven off the preserved pre-edit baseline)
    // still lands on the eager answer.
    let _ = graph.critical_delay_ps();
    let after = graph.stats();
    assert_eq!(after.forward_flushes, before.forward_flushes + 1);
    assert_eq!(
        graph.net_load_ff(fanin_net).to_bits(),
        lazy_load.to_bits(),
        "lazy and settled load answers must agree"
    );
    assert_eq!(graph.stats().load_only_settles, after.load_only_settles);
    assert_matches_eager(&graph, &lib, "after loads-only settle");
}

#[test]
fn sweep_budget_extremes_are_bit_identical() {
    // (1,1) disables the count cut-over (pure drain); (0,1) forces the
    // full sweep on any dirty flush. Both extremes — and the default —
    // must land on identical bits after identical mutations: drain and
    // sweep are alternative schedules of the same converged state.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let sizing = Sizing::minimum(&circuit, &lib);
    let mut dflt = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    let mut drain = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    drain.set_sweep_budgets((1, 1), (1, 1));
    let mut sweep = TimingGraph::new(&circuit, &lib, &sizing).unwrap();
    sweep.set_sweep_budgets((0, 1), (0, 1));
    let t0 = dflt.critical_delay_ps();
    for g in [&mut dflt, &mut drain, &mut sweep] {
        g.set_constraint(0.85 * t0);
    }

    let mut rng = SplitMix64::new(0xB0D6_E7E5);
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();
    for round in 0..10 {
        let batch: Vec<(GateId, f64)> = (0..3 + rng.below(6))
            .map(|_| (*rng.pick(&gates), cref * (1.0 + 20.0 * rng.next_f64())))
            .collect();
        for g in [&mut dflt, &mut drain, &mut sweep] {
            g.resize_gates(batch.clone());
        }
        assert_graphs_bit_equal(&dflt, &drain, &format!("round {round}: default vs drain"));
        assert_graphs_bit_equal(&dflt, &sweep, &format!("round {round}: default vs sweep"));
    }
    assert_matches_eager(&dflt, &lib, "budget extremes");
    // The knob reports what it was set to.
    assert_eq!(drain.sweep_budgets(), ((1, 1), (1, 1)));
    assert_eq!(sweep.sweep_budgets(), ((0, 1), (0, 1)));
}
