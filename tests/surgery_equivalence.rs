//! Randomized surgery equivalence: the first suite that mutates graph
//! *topology* under incremental timing state. After **every** step of a
//! random mix of resizes, Inv-pair buffer insertions, De Morgan
//! rewrites and raw gate replacements, the whole queryable state of the
//! [`TimingGraph`] — arrivals, slopes, loads, gate delays, the critical
//! path, required times, slacks, the design-worst slack and the k-paths
//! completion bounds — must be bit-identical to a from-scratch pipeline
//! (`analyze_with` + `required_times` + `completion_bounds`) over the
//! graph's own edited circuit.
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::rng::SplitMix64;
use pops::netlist::surgery::{EditOp, EditPlan};
use pops::prelude::*;
use pops::sta::analysis::{analyze_with, EdgeDir};
use pops::sta::{completion_bounds, TimingGraph};

/// Same-arity alternatives for the random `ReplaceGate` move (timing
/// equivalence does not require logic preservation; the raw primitive
/// is exercised as-is).
fn same_arity_swap(kind: CellKind, rng: &mut SplitMix64) -> CellKind {
    use CellKind::*;
    let pool: &[CellKind] = match kind.num_inputs() {
        1 => &[Inv, Buf],
        2 => &[Nand2, Nor2, And2, Or2, Xor2, Xnor2],
        3 => &[Nand3, Nor3, And3, Or3],
        _ => &[Nand4, Nor4, And4, Or4],
    };
    *rng.pick(pool)
}

fn assert_equivalent(graph: &TimingGraph, lib: &Library, step: usize) {
    let circuit = graph.circuit();
    let name = circuit.name();
    circuit.validate().unwrap_or_else(|e| {
        panic!("{name} step {step}: surgery broke the netlist: {e}");
    });
    let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options())
        .expect("edited circuits stay analyzable");

    // Forward state.
    assert_eq!(
        graph.critical_delay_ps().to_bits(),
        fresh.critical_delay_ps().to_bits(),
        "{name} step {step}: critical delay diverged"
    );
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                graph.arrival_ps(net, dir).to_bits(),
                fresh.arrival_ps(net, dir).to_bits(),
                "{name} step {step}: arrival of {net} {dir:?}"
            );
            assert_eq!(
                graph.slope_ps(net, dir).to_bits(),
                fresh.slope_ps(net, dir).to_bits(),
                "{name} step {step}: slope of {net} {dir:?}"
            );
        }
        assert_eq!(
            graph.net_load_ff(net).to_bits(),
            fresh.net_load_ff(net).to_bits(),
            "{name} step {step}: load of {net}"
        );
    }
    for g in circuit.gate_ids() {
        assert_eq!(
            graph.gate_delay_worst_ps(g).to_bits(),
            fresh.gate_delay_worst_ps(g).to_bits(),
            "{name} step {step}: worst delay of {g}"
        );
    }
    assert_eq!(
        graph.critical_path().gates,
        fresh.critical_path().gates,
        "{name} step {step}: critical path diverged"
    );

    // Backward state under the maintained constraint.
    let tc = graph.constraint_ps().expect("constraint set");
    let slacks =
        required_times(circuit, lib, graph.sizing(), &fresh, tc).expect("circuits stay valid");
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                graph.required_ps(net, dir).to_bits(),
                slacks.required_ps(net, dir).to_bits(),
                "{name} step {step}: required of {net} {dir:?}"
            );
            assert_eq!(
                graph.slack_ps(net, dir).to_bits(),
                slacks.slack_ps(net, dir).to_bits(),
                "{name} step {step}: slack of {net} {dir:?}"
            );
        }
    }
    assert_eq!(
        graph.worst_slack_overall_ps().map(f64::to_bits),
        slacks.worst_slack_overall_ps().map(f64::to_bits),
        "{name} step {step}: design-worst slack diverged"
    );
    let bounds = completion_bounds(circuit, &fresh);
    for g in circuit.gate_ids() {
        assert_eq!(
            graph.completion_ps(g).to_bits(),
            bounds[g.index()].to_bits(),
            "{name} step {step}: completion bound of {g}"
        );
    }
}

/// One random structural edit. Returns `None` when the dice produced an
/// inapplicable move (caller falls back to a resize).
fn random_edit(circuit: &Circuit, cref: f64, rng: &mut SplitMix64) -> Option<EditOp> {
    match rng.below(3) {
        0 => {
            // Buffer a random driven net, moving a random nonempty
            // subset of its load pins.
            let nets: Vec<NetId> = circuit
                .net_ids()
                .filter(|&n| circuit.driver_gate(n).is_some() && circuit.net(n).fanout() >= 1)
                .collect();
            let net = *rng.pick(&nets);
            let all = circuit.net(net).loads().to_vec();
            let mut loads: Vec<(GateId, usize)> =
                all.iter().copied().filter(|_| rng.chance(0.5)).collect();
            if loads.is_empty() {
                loads.push(all[rng.below(all.len())]);
            }
            Some(EditOp::InsertBuffer {
                net,
                loads,
                stage_cin_ff: [
                    cref * (1.0 + 9.0 * rng.next_f64()),
                    cref * (1.0 + 19.0 * rng.next_f64()),
                ],
            })
        }
        1 => {
            // De Morgan a random NAND/NOR.
            let duals: Vec<GateId> = circuit
                .gate_ids()
                .filter(|&g| circuit.gate(g).kind().demorgan_dual().is_some())
                .collect();
            if duals.is_empty() {
                return None;
            }
            Some(EditOp::DeMorgan {
                gate: *rng.pick(&duals),
                inv_cin_ff: cref * (1.0 + 4.0 * rng.next_f64()),
            })
        }
        _ => {
            // Swap a random gate's cell within its arity class.
            let gates: Vec<GateId> = circuit.gate_ids().collect();
            let gate = *rng.pick(&gates);
            let kind = same_arity_swap(circuit.gate(gate).kind(), rng);
            Some(EditOp::ReplaceGate {
                gate,
                kind,
                inputs: circuit.gate(gate).inputs().to_vec(),
            })
        }
    }
}

fn random_surgery_sequence(name: &str, seed: u64, steps: usize) {
    let lib = Library::cmos025();
    let base = suite::circuit(name).expect("suite circuit exists");
    let mut rng = SplitMix64::new(seed);
    let mut graph = TimingGraph::new(&base, &lib, &Sizing::minimum(&base, &lib))
        .expect("suite circuits are acyclic");
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let cref = lib.min_drive_ff();

    for step in 0..steps {
        // 3-in-8 structural edit, otherwise the familiar resize moves —
        // the flow's real mix once write-back engages.
        let did_edit = if rng.below(8) < 3 {
            match random_edit(graph.circuit(), cref, &mut rng) {
                Some(op) => {
                    let plan: EditPlan = vec![op].into();
                    let applied = graph.apply_edits(&plan).expect("random edits are valid");
                    assert_eq!(applied.len(), 1, "{name} step {step}");
                    true
                }
                None => false,
            }
        } else {
            false
        };
        if !did_edit {
            let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
            match rng.below(3) {
                0 => {
                    let batch: Vec<(GateId, f64)> = (0..2 + rng.below(5))
                        .map(|_| {
                            let g = *rng.pick(&gates);
                            (g, cref * (1.0 + 30.0 * rng.next_f64()))
                        })
                        .collect();
                    graph.resize_gates(batch);
                }
                1 => {
                    let g = *rng.pick(&gates);
                    graph.resize_gate(g, cref);
                }
                _ => {
                    let g = *rng.pick(&gates);
                    graph.resize_gate(g, cref * (1.0 + 30.0 * rng.next_f64()));
                }
            }
        }
        assert_equivalent(&graph, &lib, step);
    }

    // Some surgery must actually have happened, and the k-paths ranking
    // through the cached bounds agrees with a fresh report at the end.
    assert!(
        graph.stats().structural_edits > 0,
        "{name}: the sequence never edited the structure"
    );
    assert!(
        graph.circuit().gate_count() > base.gate_count(),
        "{name}: edits must have grown the netlist"
    );
    let circuit = graph.circuit();
    let fresh = analyze_with(circuit, &lib, graph.sizing(), graph.options()).unwrap();
    let via_graph = k_most_critical_paths(circuit, &graph, 8);
    let via_fresh = k_most_critical_paths(circuit, &fresh, 8);
    assert_eq!(via_graph.len(), via_fresh.len());
    for (a, b) in via_graph.iter().zip(&via_fresh) {
        assert_eq!(a.gates, b.gates, "{name}: k-paths diverged after surgery");
    }
}

#[test]
fn fpd_random_surgery_matches_rebuild() {
    random_surgery_sequence("fpd", 0x5u64.wrapping_mul(0x9E37_79B9), 30);
}

#[test]
fn c432_random_surgery_matches_rebuild() {
    random_surgery_sequence("c432", 0x5u64.wrapping_add(0x0432), 30);
}

#[test]
fn c880_random_surgery_matches_rebuild() {
    random_surgery_sequence("c880", 0x5u64.wrapping_add(0x0880), 30);
}

#[test]
fn c1908_random_surgery_matches_rebuild() {
    random_surgery_sequence("c1908", 0x5u64.wrapping_add(0x1908), 30);
}

#[test]
fn c6288_random_surgery_matches_rebuild() {
    // The heavyweights: fewer steps keep the per-step fresh reference
    // passes affordable in debug builds.
    random_surgery_sequence("c6288", 0x5u64.wrapping_add(0x6288), 12);
}

#[test]
fn c7552_random_surgery_matches_rebuild() {
    random_surgery_sequence("c7552", 0x5u64.wrapping_add(0x7552), 12);
}

#[test]
fn surgery_interleaved_with_option_and_constraint_changes_matches() {
    let lib = Library::cmos025();
    let base = suite::circuit("fpd").unwrap();
    let mut rng = SplitMix64::new(0x0B97_1CAF_5E11);
    let mut graph = TimingGraph::new(&base, &lib, &Sizing::minimum(&base, &lib)).unwrap();
    let t0 = graph.critical_delay_ps();
    graph.set_constraint(t0);
    let cref = lib.min_drive_ff();
    for step in 0..24 {
        match step % 6 {
            0 | 3 => {
                if let Some(op) = random_edit(graph.circuit(), cref, &mut rng) {
                    graph.apply_edits(&vec![op].into()).unwrap();
                }
            }
            4 => {
                graph.set_options(&pops::sta::analysis::AnalyzeOptions {
                    po_load_ff: 5.0 + 40.0 * rng.next_f64(),
                    input_transition_ps: 20.0 + 100.0 * rng.next_f64(),
                });
            }
            5 => {
                graph.set_constraint(t0 * (0.7 + 0.6 * rng.next_f64()));
            }
            _ => {
                let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref * (1.0 + 20.0 * rng.next_f64()));
            }
        }
        assert_equivalent(&graph, &lib, step);
    }
    assert!(graph.stats().structural_edits > 0);
}

#[test]
fn surgery_retime_touches_less_than_a_rebuild() {
    // The economics of apply_edits: re-timing one buffer insertion must
    // re-evaluate (far) fewer gates than the full pass a from-scratch
    // graph pays. (The structural array rebuild is pointer work; the
    // arc evaluations are what the incremental engine saves.)
    let lib = Library::cmos025();
    let base = suite::circuit("c880").unwrap();
    let mut graph = TimingGraph::new(&base, &lib, &Sizing::minimum(&base, &lib)).unwrap();
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let before = graph.stats();
    // Buffer a *deep* net (driver late in the topological order): its
    // remaining downstream cone — the honest blast radius of the edit —
    // is a fraction of the circuit.
    let order = base.topo_order().unwrap();
    let net = order
        .iter()
        .rev()
        .map(|&g| base.gate(g).output())
        .find(|&n| base.net(n).fanout() >= 2)
        .expect("c880 has fanout-heavy nets");
    let loads = base.net(net).loads()[1..].to_vec();
    let plan: EditPlan = vec![EditOp::InsertBuffer {
        net,
        loads,
        stage_cin_ff: [lib.min_drive_ff(), 4.0 * lib.min_drive_ff()],
    }]
    .into();
    graph.apply_edits(&plan).unwrap();
    // Surgery itself no longer evaluates any arc (PR 5): the edit's
    // honest blast radius is what the first post-edit query flushes.
    let _ = graph.worst_slack_overall_ps();
    let reevals = graph.stats().gates_reevaluated - before.gates_reevaluated;
    assert!(
        reevals < graph.circuit().gate_count() / 2,
        "surgery cone {} vs full pass {}",
        reevals,
        graph.circuit().gate_count()
    );
}
