//! Forward-lazy ≡ eager: with PR 5 the *forward* timing state of a
//! [`TimingGraph`] is query-driven too — mutations only append id-keyed
//! seed logs, and the first timing query runs one merged
//! forward(-then-backward) flush. This suite proves the whole queryable
//! surface — arrivals, slopes, loads, worst gate delays, the critical
//! path, required times, slacks, completion bounds, k-paths — stays
//! **bit-identical** to a from-scratch eager pass no matter how many
//! mutations (resizes, batched write-backs, structural edits, option
//! and constraint changes) pile up *between* queries.
//!
//! The mirror of `tests/lazy_equivalence.rs` (which covers the backward
//! state) for the forward direction, plus the stats-proven lazy
//! contract: mutations alone never flush *either* direction, a forward
//! query never pays for backward state, and the merged forward flush
//! does strictly less arc work than per-mutation propagation.
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::rng::SplitMix64;
use pops::netlist::surgery::{EditOp, EditPlan};
use pops::prelude::*;
use pops::sta::analysis::{analyze_with, AnalyzeOptions, EdgeDir};
use pops::sta::{completion_bounds, TimingGraph};

/// Bit-exact comparison of every *forward* observable against a fresh
/// eager pass over the graph's (possibly edited) circuit.
fn assert_forward_equals_eager(graph: &TimingGraph, lib: &Library, step: usize) {
    let circuit = graph.circuit();
    let name = circuit.name();
    let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).expect("acyclic");
    assert_eq!(
        graph.critical_delay_ps().to_bits(),
        fresh.critical_delay_ps().to_bits(),
        "{name} step {step}: critical delay diverged"
    );
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                graph.arrival_ps(net, dir).to_bits(),
                fresh.arrival_ps(net, dir).to_bits(),
                "{name} step {step}: arrival of {net} {dir:?}"
            );
            assert_eq!(
                graph.slope_ps(net, dir).to_bits(),
                fresh.slope_ps(net, dir).to_bits(),
                "{name} step {step}: slope of {net} {dir:?}"
            );
        }
        assert_eq!(
            graph.net_load_ff(net).to_bits(),
            fresh.net_load_ff(net).to_bits(),
            "{name} step {step}: load of {net}"
        );
    }
    for g in circuit.gate_ids() {
        assert_eq!(
            graph.gate_delay_worst_ps(g).to_bits(),
            fresh.gate_delay_worst_ps(g).to_bits(),
            "{name} step {step}: worst delay of {g}"
        );
    }
    assert_eq!(
        graph.critical_path().gates,
        fresh.critical_path().gates,
        "{name} step {step}: critical path diverged"
    );
}

/// The backward observables, when a constraint is set (the two-phase
/// flush must leave them eager-identical too).
fn assert_backward_equals_eager(graph: &TimingGraph, lib: &Library, step: usize) {
    let circuit = graph.circuit();
    let name = circuit.name();
    let tc = graph.constraint_ps().expect("constraint set");
    let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).expect("acyclic");
    let slacks = required_times(circuit, lib, graph.sizing(), &fresh, tc).expect("acyclic");
    assert_eq!(
        graph.worst_slack_overall_ps().map(f64::to_bits),
        slacks.worst_slack_overall_ps().map(f64::to_bits),
        "{name} step {step}: design-worst slack diverged"
    );
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                graph.slack_ps(net, dir).to_bits(),
                slacks.slack_ps(net, dir).to_bits(),
                "{name} step {step}: slack of {net} {dir:?}"
            );
        }
    }
    let bounds = completion_bounds(circuit, &fresh);
    for g in circuit.gate_ids() {
        assert_eq!(
            graph.completion_ps(g).to_bits(),
            bounds[g.index()].to_bits(),
            "{name} step {step}: completion bound of {g}"
        );
    }
}

/// A buffer-insertion plan on a random fanout-heavy driven net of the
/// graph's current circuit, or `None` when the circuit has none.
fn random_buffer_plan(
    graph: &TimingGraph,
    lib: &Library,
    rng: &mut SplitMix64,
) -> Option<EditPlan> {
    let circuit = graph.circuit();
    let candidates: Vec<_> = circuit
        .net_ids()
        .filter(|&n| circuit.driver_gate(n).is_some() && circuit.net(n).fanout() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let net = *rng.pick(&candidates);
    let loads = circuit.net(net).loads()[1..].to_vec();
    if loads.is_empty() {
        return None;
    }
    Some(
        vec![EditOp::InsertBuffer {
            net,
            loads,
            stage_cin_ff: [
                lib.min_drive_ff() * (1.0 + rng.next_f64()),
                lib.min_drive_ff() * (2.0 + 4.0 * rng.next_f64()),
            ],
        }]
        .into(),
    )
}

/// Random mutation bursts with queries (and the full differential
/// check) only every few steps — mutations in between stay unflushed in
/// *both* directions.
fn random_forward_lazy_sequence(name: &str, seed: u64, steps: usize, check_every: usize) {
    let lib = Library::cmos025();
    let circuit = suite::circuit(name).expect("suite circuit");
    let mut rng = SplitMix64::new(seed);
    let mut graph =
        TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).expect("acyclic");
    let t0 = graph.critical_delay_ps();
    graph.set_constraint(0.9 * t0);
    let cref = lib.min_drive_ff();

    for step in 0..steps {
        // Gate ids against the *current* circuit: surgery appends gates.
        let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
        match rng.below(8) {
            0 => {
                // Batched write-back, the flow's per-path pattern.
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(8))
                    .map(|_| {
                        let g = *rng.pick(&gates);
                        (g, cref * (1.0 + 25.0 * rng.next_f64()))
                    })
                    .collect();
                graph.resize_gates(batch);
            }
            1 => {
                // Structural edit with both directions' seeds pending.
                if let Some(plan) = random_buffer_plan(&graph, &lib, &mut rng) {
                    graph.apply_edits(&plan).expect("valid edit");
                }
            }
            2 => {
                // Option change: lazy PO-load/PI-slope rescan forward,
                // wholesale (lazy) invalidation backward.
                graph.set_options(&AnalyzeOptions {
                    po_load_ff: 5.0 + 40.0 * rng.next_f64(),
                    input_transition_ps: 20.0 + 100.0 * rng.next_f64(),
                });
            }
            3 => {
                // Constraint move: fresh backward state, no forward work.
                graph.set_constraint(t0 * (0.7 + 0.6 * rng.next_f64()));
            }
            4 => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref);
            }
            _ => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref * (1.0 + 25.0 * rng.next_f64()));
            }
        }
        if step % check_every == check_every - 1 {
            // Alternate which direction's query fires first, so both
            // the forward-query-first and the two-phase
            // backward-query-first flush orders are exercised.
            if (step / check_every).is_multiple_of(2) {
                assert_forward_equals_eager(&graph, &lib, step);
                assert_backward_equals_eager(&graph, &lib, step);
            } else {
                assert_backward_equals_eager(&graph, &lib, step);
                assert_forward_equals_eager(&graph, &lib, step);
            }
        }
    }
    // Whatever the tail of the sequence left pending, the final state
    // answers eagerly-correct.
    assert_forward_equals_eager(&graph, &lib, steps);
    assert_backward_equals_eager(&graph, &lib, steps);
}

#[test]
fn fpd_forward_lazy_matches_eager() {
    random_forward_lazy_sequence("fpd", 0x05F0_F00D, 48, 5);
}

#[test]
fn c432_forward_lazy_matches_eager() {
    random_forward_lazy_sequence("c432", 0x05F0_0432, 48, 5);
}

#[test]
fn c880_forward_lazy_matches_eager() {
    random_forward_lazy_sequence("c880", 0x05F0_0880, 40, 5);
}

#[test]
fn c1908_forward_lazy_matches_eager() {
    random_forward_lazy_sequence("c1908", 0x05F0_1908, 32, 4);
}

#[test]
fn c6288_forward_lazy_matches_eager() {
    // The multiplier is the heavyweight: fewer steps keep the fresh
    // reference passes affordable in debug builds.
    random_forward_lazy_sequence("c6288", 0x05F0_6288, 12, 3);
}

#[test]
fn c7552_forward_lazy_matches_eager() {
    random_forward_lazy_sequence("c7552", 0x05F0_7552, 12, 3);
}

#[test]
fn mutations_alone_never_flush_either_direction() {
    // The two-direction lazy contract as a stats-proven property: no
    // sequence of mutations — plain resizes, batches, surgery — does
    // *any* timing work, forward or backward; only queries do, exactly
    // once per (generation, direction), and a forward query never pays
    // for backward state.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let mut rng = SplitMix64::new(0x05F0_CAFE);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let cref = lib.min_drive_ff();
    let settled = graph.stats();

    for step in 0..60 {
        let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
        if step % 20 == 19 {
            if let Some(plan) = random_buffer_plan(&graph, &lib, &mut rng) {
                graph.apply_edits(&plan).unwrap();
            }
        } else if step % 7 == 3 {
            let batch: Vec<(GateId, f64)> = (0..4)
                .map(|_| {
                    let g = *rng.pick(&gates);
                    (g, cref * (1.0 + 10.0 * rng.next_f64()))
                })
                .collect();
            graph.resize_gates(batch);
        } else {
            let g = *rng.pick(&gates);
            graph.resize_gate(g, cref * (1.0 + 10.0 * rng.next_f64()));
        }
        let s = graph.stats();
        assert_eq!(
            s.forward_flushes, settled.forward_flushes,
            "step {step}: mutation flushed forward"
        );
        assert_eq!(
            s.gates_reevaluated, settled.gates_reevaluated,
            "step {step}: mutation did forward arc work"
        );
        assert_eq!(
            s.backward_flushes, settled.backward_flushes,
            "step {step}: mutation flushed backward"
        );
        assert_eq!(
            s.required_reevaluated, settled.required_reevaluated,
            "step {step}: mutation did backward arc work"
        );
    }

    // One forward query: exactly one forward flush, no backward work.
    let _ = graph.critical_delay_ps();
    let after_fwd = graph.stats();
    assert_eq!(after_fwd.forward_flushes, settled.forward_flushes + 1);
    assert!(after_fwd.gates_reevaluated > settled.gates_reevaluated);
    assert_eq!(
        after_fwd.backward_flushes, settled.backward_flushes,
        "a forward query must not pay for backward state"
    );

    // A slack query joins the flushed forward generation (no second
    // forward flush) and drains the backward side once.
    let _ = graph.worst_slack_overall_ps();
    let after_bwd = graph.stats();
    assert_eq!(after_bwd.forward_flushes, after_fwd.forward_flushes);
    assert_eq!(after_bwd.gates_reevaluated, after_fwd.gates_reevaluated);
    assert_eq!(after_bwd.backward_flushes, settled.backward_flushes + 1);

    // Repeat queries on a clean generation are free in both directions.
    let _ = graph.critical_delay_ps();
    let _ = graph.worst_slack_overall_ps();
    assert_eq!(graph.stats(), after_bwd);

    // And the state all of this lands on is the eager one.
    assert_forward_equals_eager(&graph, &lib, usize::MAX);
    assert_backward_equals_eager(&graph, &lib, usize::MAX);
}

#[test]
fn backward_query_runs_the_two_phase_flush() {
    // A slack read on a graph with pending mutations must settle the
    // forward state first (one forward flush inside the same query) —
    // required times derive from final slopes and loads.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c432").unwrap();
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let g = circuit.gate_ids().nth(circuit.gate_count() / 2).unwrap();
    graph.resize_gate(g, 4.0 * lib.min_drive_ff());
    let before = graph.stats();
    let _ = graph.worst_slack_overall_ps();
    let after = graph.stats();
    assert_eq!(after.forward_flushes, before.forward_flushes + 1);
    assert_eq!(after.backward_flushes, before.backward_flushes + 1);
    assert!(after.gates_reevaluated > before.gates_reevaluated);
    assert_backward_equals_eager(&graph, &lib, 0);
}

#[test]
fn constraint_change_alone_never_flushes_forward() {
    // set_constraint bumps the mutation generation but deposits no
    // forward seeds: the next forward query settles the generation
    // without counting (or paying for) a flush.
    let lib = Library::cmos025();
    let circuit = suite::circuit("fpd").unwrap();
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    let t0 = graph.critical_delay_ps();
    let settled = graph.stats();
    graph.set_constraint(0.9 * t0);
    let _ = graph.critical_delay_ps();
    graph.set_constraint(0.8 * t0);
    let _ = graph.critical_delay_ps();
    let after = graph.stats();
    assert_eq!(after.forward_flushes, settled.forward_flushes);
    assert_eq!(after.gates_reevaluated, settled.gates_reevaluated);
    assert_eq!(
        graph.critical_delay_ps().to_bits(),
        t0.to_bits(),
        "constraint moves must not disturb arrivals"
    );
}

#[test]
fn merged_forward_flush_beats_per_mutation_propagation() {
    // N resizes + one query must re-evaluate (far) fewer gates than N
    // eager per-resize propagations: the merged cones deduplicate in
    // the rank bitset, and the saturation cut-over caps the flush at
    // roughly one full pass.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c1908").unwrap();
    let mut rng = SplitMix64::new(0x05F0_BEEF);
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();

    let run = |query_per_resize: bool, rng: &mut SplitMix64| -> usize {
        let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
        let before = graph.stats().gates_reevaluated;
        for _ in 0..32 {
            let g = *rng.pick(&gates);
            graph.resize_gate(g, cref * (1.0 + 10.0 * rng.next_f64()));
            if query_per_resize {
                let _ = graph.critical_delay_ps();
            }
        }
        let _ = graph.critical_delay_ps();
        graph.stats().gates_reevaluated - before
    };

    let mut rng_eager = SplitMix64::new(rng.next_u64());
    let eager = run(true, &mut rng_eager);
    let mut rng_lazy = SplitMix64::new(rng_eager.next_u64());
    // Different gates, same distribution — compare magnitudes, not bits.
    let lazy = run(false, &mut rng_lazy);
    assert!(
        lazy * 2 < eager,
        "merged forward flush ({lazy}) should be well under per-resize propagation ({eager})"
    );
}

#[test]
fn surgery_interleaved_with_pending_logs_keeps_both_id_spaces_consistent() {
    // The lazy/surgery seam (PR 5's satellite): resizes whose forward
    // *and* backward seeds are still pending when graph surgery
    // re-ranks the netlist — and then resizes of the freshly created
    // gates on top — must neither drop nor mis-key any seed, and the
    // sizing must extend exactly by the planned (clamped) sizes at the
    // new dense ids. The first query after the pile-up answers
    // bit-identically to a from-scratch eager pass.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c432").unwrap();
    let mut rng = SplitMix64::new(0x05F0_5EA1);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    graph.set_constraint(0.85 * graph.critical_delay_ps());
    // Settle once so the pile-up below is what the next flush covers.
    let _ = graph.worst_slack_overall_ps();
    let cref = lib.min_drive_ff();

    for round in 0..6 {
        // 1. Resize burst: forward + backward logs go pending.
        let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
        for _ in 0..5 {
            let g = *rng.pick(&gates);
            graph.resize_gate(g, cref * (1.0 + 20.0 * rng.next_f64()));
        }
        // 2. Surgery while those logs are un-flushed: ids re-rank, the
        //    sizing and per-id state extend.
        let before_gates = graph.circuit().gate_count();
        let plan = random_buffer_plan(&graph, &lib, &mut rng).expect("fanout-heavy nets exist");
        let applied = graph.apply_edits(&plan).expect("valid edit");
        let created: Vec<GateId> = applied.iter().flat_map(|a| a.new_gates.clone()).collect();
        assert_eq!(graph.circuit().gate_count(), before_gates + created.len());
        assert_eq!(graph.sizing().len(), graph.circuit().gate_count());
        for a in &applied {
            for (&g, &cin) in a.new_gates.iter().zip(&a.new_gate_cin_ff) {
                assert_eq!(
                    graph.sizing().cin_ff(g).to_bits(),
                    cin.max(lib.min_drive_ff()).to_bits(),
                    "round {round}: created gate {g} mis-sized"
                );
            }
        }
        // 3. More mutations on top, including the created gates — their
        //    ids key into the same (extended) log space.
        for &g in &created {
            graph.resize_gate(g, cref * (1.0 + 10.0 * rng.next_f64()));
        }
        // 4. First query since the pile-up: one merged two-phase flush.
        assert_backward_equals_eager(&graph, &lib, round);
        assert_forward_equals_eager(&graph, &lib, round);
    }
}
