//! Lazy ≡ eager: the query-driven backward state of a [`TimingGraph`]
//! must be observationally identical to the eager PR-2/PR-3 semantics —
//! i.e. to a from-scratch forward + backward pass — no matter how many
//! mutations (resizes, batched write-backs, structural edits, option
//! and constraint changes) pile up *between* queries, and no matter
//! which query kind (slack, required time, design-worst slack, k-paths)
//! triggers the flush.
//!
//! The mirror of `tests/backward_equivalence.rs` for the lazy engine:
//! that suite queries after every step (so each flush covers one
//! mutation); this one lets whole mutation bursts accumulate unqueried,
//! exercising the merged-cone flush, the saturation sweep cut-over and
//! the seed logs' survival across graph surgery.
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::rng::SplitMix64;
use pops::netlist::surgery::{EditOp, EditPlan};
use pops::prelude::*;
use pops::sta::analysis::{analyze_with, AnalyzeOptions, EdgeDir};
use pops::sta::{completion_bounds, TimingGraph};

/// Bit-exact comparison of every backward observable against fresh
/// eager passes over the graph's (possibly edited) circuit.
fn assert_lazy_equals_eager(graph: &TimingGraph, lib: &Library, step: usize) {
    let circuit = graph.circuit();
    let name = circuit.name();
    let tc = graph.constraint_ps().expect("constraint set");
    let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options()).expect("acyclic");
    let slacks = required_times(circuit, lib, graph.sizing(), &fresh, tc).expect("acyclic");

    assert_eq!(
        graph.worst_slack_overall_ps().map(f64::to_bits),
        slacks.worst_slack_overall_ps().map(f64::to_bits),
        "{name} step {step}: design-worst slack diverged"
    );
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                graph.required_ps(net, dir).to_bits(),
                slacks.required_ps(net, dir).to_bits(),
                "{name} step {step}: required of {net} {dir:?}"
            );
            assert_eq!(
                graph.slack_ps(net, dir).to_bits(),
                slacks.slack_ps(net, dir).to_bits(),
                "{name} step {step}: slack of {net} {dir:?}"
            );
        }
    }
    let bounds = completion_bounds(circuit, &fresh);
    for g in circuit.gate_ids() {
        assert_eq!(
            graph.completion_ps(g).to_bits(),
            bounds[g.index()].to_bits(),
            "{name} step {step}: completion bound of {g}"
        );
    }
    let via_graph = k_most_critical_paths(circuit, graph, 6);
    let via_fresh = k_most_critical_paths(circuit, &fresh, 6);
    assert_eq!(via_graph.len(), via_fresh.len(), "{name} step {step}");
    for (a, b) in via_graph.iter().zip(&via_fresh) {
        assert_eq!(a.gates, b.gates, "{name} step {step}: k-paths diverged");
    }
}

/// A buffer-insertion plan on a random fanout-heavy driven net of the
/// graph's current circuit, or `None` when the circuit has none.
fn random_buffer_plan(
    graph: &TimingGraph,
    lib: &Library,
    rng: &mut SplitMix64,
) -> Option<EditPlan> {
    let circuit = graph.circuit();
    let candidates: Vec<_> = circuit
        .net_ids()
        .filter(|&n| circuit.driver_gate(n).is_some() && circuit.net(n).fanout() >= 2)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let net = *rng.pick(&candidates);
    let loads = circuit.net(net).loads()[1..].to_vec();
    if loads.is_empty() {
        return None;
    }
    Some(
        vec![EditOp::InsertBuffer {
            net,
            loads,
            stage_cin_ff: [
                lib.min_drive_ff() * (1.0 + rng.next_f64()),
                lib.min_drive_ff() * (2.0 + 4.0 * rng.next_f64()),
            ],
        }]
        .into(),
    )
}

/// Random mutation bursts with a query (and full differential check)
/// only every few steps — mutations in between stay unflushed.
fn random_lazy_sequence(name: &str, seed: u64, steps: usize, check_every: usize) {
    let lib = Library::cmos025();
    let circuit = suite::circuit(name).expect("suite circuit");
    let mut rng = SplitMix64::new(seed);
    let mut graph =
        TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).expect("acyclic");
    let t0 = graph.critical_delay_ps();
    graph.set_constraint(0.9 * t0);
    let cref = lib.min_drive_ff();

    for step in 0..steps {
        // Gate ids against the *current* circuit: surgery appends gates.
        let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
        match rng.below(8) {
            0 => {
                // Batched write-back, the flow's per-path pattern.
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(8))
                    .map(|_| {
                        let g = *rng.pick(&gates);
                        (g, cref * (1.0 + 25.0 * rng.next_f64()))
                    })
                    .collect();
                graph.resize_gates(batch);
            }
            1 => {
                // Structural edit with the backward seeds left pending.
                if let Some(plan) = random_buffer_plan(&graph, &lib, &mut rng) {
                    graph.apply_edits(&plan).expect("valid edit");
                }
            }
            2 => {
                // Option change: wholesale (lazy) invalidation.
                graph.set_options(&AnalyzeOptions {
                    po_load_ff: 5.0 + 40.0 * rng.next_f64(),
                    input_transition_ps: 20.0 + 100.0 * rng.next_f64(),
                });
            }
            3 => {
                // Constraint move: fresh backward state, still lazy.
                graph.set_constraint(t0 * (0.7 + 0.6 * rng.next_f64()));
            }
            4 => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref);
            }
            _ => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref * (1.0 + 25.0 * rng.next_f64()));
            }
        }
        if step % check_every == check_every - 1 {
            assert_lazy_equals_eager(&graph, &lib, step);
        }
    }
    // Whatever the tail of the sequence left pending, the final state
    // answers eagerly-correct.
    assert_lazy_equals_eager(&graph, &lib, steps);
}

#[test]
fn fpd_lazy_matches_eager() {
    random_lazy_sequence("fpd", 0x01A2_F00D, 48, 5);
}

#[test]
fn c432_lazy_matches_eager() {
    random_lazy_sequence("c432", 0x01A2_0432, 48, 5);
}

#[test]
fn c880_lazy_matches_eager() {
    random_lazy_sequence("c880", 0x01A2_0880, 40, 5);
}

#[test]
fn c1908_lazy_matches_eager() {
    random_lazy_sequence("c1908", 0x01A2_1908, 32, 4);
}

#[test]
fn c6288_lazy_matches_eager() {
    // The multiplier is the heavyweight: fewer steps keep the fresh
    // reference passes affordable in debug builds.
    random_lazy_sequence("c6288", 0x01A2_6288, 12, 3);
}

#[test]
fn c7552_lazy_matches_eager() {
    random_lazy_sequence("c7552", 0x01A2_7552, 12, 3);
}

#[test]
fn mutation_alone_never_flushes() {
    // The lazy contract as a property: no sequence of mutations — plain
    // resizes, batches, surgery — performs backward work; only queries
    // do, and exactly once per (generation, side).
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let mut rng = SplitMix64::new(0x01A2_CAFE);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let cref = lib.min_drive_ff();

    let baseline = graph.stats();
    assert_eq!(
        baseline.backward_flushes, 0,
        "set_constraint must not flush"
    );
    assert_eq!(baseline.required_reevaluated, 0);
    assert_eq!(baseline.completion_reevaluated, 0);

    for step in 0..60 {
        let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
        if step % 20 == 19 {
            if let Some(plan) = random_buffer_plan(&graph, &lib, &mut rng) {
                graph.apply_edits(&plan).unwrap();
            }
        } else {
            let g = *rng.pick(&gates);
            graph.resize_gate(g, cref * (1.0 + 10.0 * rng.next_f64()));
        }
        let s = graph.stats();
        assert_eq!(s.backward_flushes, 0, "step {step}: mutation flushed");
        assert_eq!(s.required_reevaluated, 0, "step {step}: required work");
        assert_eq!(s.completion_reevaluated, 0, "step {step}: completion work");
        assert_eq!(s.slack_index_updates, 0, "step {step}: index work");
    }

    // One slack query: exactly one flush, on the required side only.
    let _ = graph.worst_slack_overall_ps();
    let after_slack = graph.stats();
    assert_eq!(after_slack.backward_flushes, 1);
    assert!(after_slack.required_reevaluated > 0);
    assert_eq!(
        after_slack.completion_reevaluated, 0,
        "slack must not pay k-paths"
    );

    // A k-paths query drains the completion side separately.
    let _ = k_most_critical_paths(graph.circuit(), &graph, 4);
    let after_kpaths = graph.stats();
    assert_eq!(after_kpaths.backward_flushes, 2);
    assert!(after_kpaths.completion_reevaluated > 0);
    assert_eq!(
        after_kpaths.required_reevaluated, after_slack.required_reevaluated,
        "k-paths must not re-pay required times"
    );

    // Repeat queries on a clean generation are free.
    let _ = graph.worst_slack_overall_ps();
    let _ = k_most_critical_paths(graph.circuit(), &graph, 4);
    assert_eq!(graph.stats().backward_flushes, 2);

    // And the state all of this lands on is the eager one.
    assert_lazy_equals_eager(&graph, &lib, usize::MAX);
}

#[test]
fn all_infinite_slack_designs_report_no_worst_slack() {
    // PR 5 regression (`WorstSlackIndex`): when no endpoint carries a
    // finite slack, the tournament tree's root must stay the `+inf`
    // neutral element and `worst_slack_overall_ps` must report `None` —
    // through every flush path (initial full pass, cone drain, sweep,
    // wholesale refold, per-leaf updates) and across graph surgery that
    // grows the leaf space. Folding the `+inf` leaves into a finite
    // answer would read as an infinitely relaxed design being
    // constrained by nothing in particular.
    use pops::netlist::{CellKind, Circuit};
    let lib = Library::cmos025();
    // Gates, but nothing marked as a primary output: every required
    // time is +inf, every slack +inf.
    let mut c = Circuit::new("no-po");
    let a = c.add_input("a");
    let b = c.add_input("b");
    let y = c.add_gate(CellKind::Nand2, &[a, b], "y").unwrap();
    let z = c.add_gate(CellKind::Nor2, &[y, a], "z").unwrap();
    let _w = c.add_gate(CellKind::Inv, &[z], "w").unwrap();
    let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
    graph.set_constraint(100.0);
    // Initial (refold) path.
    assert_eq!(graph.worst_slack_overall_ps(), None);
    // Cone-drain and per-leaf-update path: a resize whose arrival moves
    // feeds the index slack_net_log, all keys still +inf.
    let g = graph.circuit().gate_ids().next().unwrap();
    graph.resize_gate(g, 5.0 * lib.min_drive_ff());
    assert_eq!(graph.worst_slack_overall_ps(), None);
    // Surgery grows the net space (zero-PO still): the post-surgery
    // wholesale refold must pad the fresh leaves with the neutral
    // element, not garbage.
    let net = graph
        .circuit()
        .net_ids()
        .find(|&n| graph.circuit().driver_gate(n).is_some() && graph.circuit().net(n).fanout() >= 1)
        .unwrap();
    let loads = graph.circuit().net(net).loads().to_vec();
    let plan: EditPlan = vec![EditOp::InsertBuffer {
        net,
        loads,
        stage_cin_ff: [lib.min_drive_ff(), lib.min_drive_ff()],
    }]
    .into();
    graph.apply_edits(&plan).unwrap();
    assert_eq!(graph.worst_slack_overall_ps(), None);
    // An infinite constraint on a real (PO-carrying) circuit is the
    // same situation: +inf required everywhere, no finite slack.
    let real = suite::circuit("fpd").unwrap();
    let mut graph = TimingGraph::new(&real, &lib, &Sizing::minimum(&real, &lib)).unwrap();
    graph.set_constraint(f64::INFINITY);
    assert_eq!(graph.worst_slack_overall_ps(), None);
    let g = real.gate_ids().next().unwrap();
    graph.resize_gate(g, 3.0 * lib.min_drive_ff());
    assert_eq!(graph.worst_slack_overall_ps(), None);
    // A finite constraint immediately restores a finite worst slack.
    graph.set_constraint(1000.0);
    assert!(graph.worst_slack_overall_ps().is_some());
}

#[test]
fn merged_flush_does_less_work_than_per_mutation_flushes() {
    // N resizes + one query must re-evaluate (far) fewer required times
    // than N eager per-resize updates would have: the merged cone
    // deduplicates, and the saturation cut-over caps it at roughly one
    // full pass.
    let lib = Library::cmos025();
    let circuit = suite::circuit("c1908").unwrap();
    let mut rng = SplitMix64::new(0x01A2_BEEF);
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();

    let run = |queries_per_resize: bool, rng: &mut SplitMix64| -> usize {
        let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());
        let _ = graph.worst_slack_overall_ps();
        let before = graph.stats().required_reevaluated;
        for _ in 0..32 {
            let g = *rng.pick(&gates);
            graph.resize_gate(g, cref * (1.0 + 10.0 * rng.next_f64()));
            if queries_per_resize {
                let _ = graph.worst_slack_overall_ps();
            }
        }
        let _ = graph.worst_slack_overall_ps();
        graph.stats().required_reevaluated - before
    };

    let mut rng_eager = SplitMix64::new(rng.next_u64());
    let eager = run(true, &mut rng_eager);
    let mut rng_lazy = SplitMix64::new(rng_eager.next_u64());
    // Different gates, same distribution — compare magnitudes, not bits.
    let lazy = run(false, &mut rng_lazy);
    assert!(
        lazy * 2 < eager,
        "merged flush ({lazy}) should be well under per-resize flushing ({eager})"
    );
}
