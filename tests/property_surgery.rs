//! Property tests for the netlist-surgery subsystem: structural edits
//! must preserve the circuit's *logic function* (buffering and
//! De Morgan rewrites are implementation moves, not behavior changes),
//! respect the `Flimit` discipline they exist to enforce, and leave
//! every edited circuit structurally sound (validated, acyclic, with
//! fresh topo/level caches).
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use std::collections::HashMap;

use pops::core::buffer::{plan_buffer_insertions, FlimitCache};
use pops::core::restructure::plan_demorgan_restructure;
use pops::netlist::rng::SplitMix64;
use pops::netlist::surgery::EditOp;
use pops::prelude::*;

/// Random primary-input assignment for a circuit.
fn random_vector<'a>(
    circuit: &'a Circuit,
    names: &'a [String],
    rng: &mut SplitMix64,
) -> HashMap<&'a str, bool> {
    let _ = circuit;
    names
        .iter()
        .map(|n| (n.as_str(), rng.chance(0.5)))
        .collect()
}

fn input_names(circuit: &Circuit) -> Vec<String> {
    circuit
        .primary_inputs()
        .iter()
        .map(|&n| circuit.net(n).name().to_string())
        .collect()
}

/// Effective fan-out `C_L / C_IN(driver)` and `Flimit` of every driven
/// net under `cin_ff`, in one pass.
fn fanout_ratios(
    circuit: &Circuit,
    lib: &Library,
    cin_ff: &[f64],
    po_load_ff: f64,
    cache: &mut FlimitCache,
) -> Vec<(NetId, f64, Option<f64>)> {
    circuit
        .net_ids()
        .filter_map(|net| {
            let driver = circuit.driver_gate(net)?;
            let mut load: f64 = circuit
                .net(net)
                .loads()
                .iter()
                .map(|&(g, _)| cin_ff[g.index()])
                .sum();
            if circuit.net(net).is_output() {
                load += po_load_ff;
            }
            let upstream = circuit
                .gate(driver)
                .inputs()
                .first()
                .and_then(|&n| circuit.driver_gate(n))
                .map(|g| circuit.gate(g).kind())
                .unwrap_or(CellKind::Inv);
            let limit = cache.get(lib, upstream, circuit.gate(driver).kind());
            Some((net, load / cin_ff[driver.index()], limit))
        })
        .collect()
}

#[test]
fn planned_buffers_preserve_the_logic_function() {
    let lib = Library::cmos025();
    let cref = lib.min_drive_ff();
    for name in ["fpd", "c432"] {
        let base = suite::circuit(name).unwrap();
        let names = input_names(&base);
        let mut edited = base.clone();
        let cins = vec![cref; base.gate_count()];
        let mut cache = FlimitCache::new();
        let nets: Vec<NetId> = base.net_ids().collect();
        // Keep each net's first load pin direct, move the rest.
        let plan = plan_buffer_insertions(
            &base,
            &lib,
            &cins,
            10.0,
            &nets,
            |n, g| base.net(n).loads().first().map(|&(g0, _)| g0) != Some(g),
            &mut cache,
        );
        assert!(
            !plan.is_empty(),
            "{name}: suite spines carry over-limit nets"
        );
        plan.apply_to(&mut edited).unwrap();
        edited.validate().unwrap();
        let mut rng = SplitMix64::new(0xB0FF_E23D ^ name.len() as u64);
        for _ in 0..24 {
            let v = random_vector(&base, &names, &mut rng);
            assert_eq!(
                base.evaluate(&v).unwrap(),
                edited.evaluate(&v).unwrap(),
                "{name}: buffer insertion changed an output"
            );
        }
    }
}

#[test]
fn planned_buffers_never_push_a_compliant_net_past_its_flimit() {
    let lib = Library::cmos025();
    let cref = lib.min_drive_ff();
    let base = suite::circuit("c880").unwrap();
    let po_load = 10.0;
    let cins = vec![cref; base.gate_count()];
    let mut cache = FlimitCache::new();
    let before: HashMap<NetId, f64> = fanout_ratios(&base, &lib, &cins, po_load, &mut cache)
        .into_iter()
        .map(|(n, f, _)| (n, f))
        .collect();

    let mut edited = base.clone();
    let nets: Vec<NetId> = base.net_ids().collect();
    let plan = plan_buffer_insertions(
        &base,
        &lib,
        &cins,
        po_load,
        &nets,
        |n, g| base.net(n).loads().first().map(|&(g0, _)| g0) != Some(g),
        &mut cache,
    );
    assert!(!plan.is_empty());
    let applied = plan.apply_to(&mut edited).unwrap();

    // Post-edit sizing: old gates keep theirs, new gates take the
    // planned stage sizes.
    let mut cins_after = cins.clone();
    for edit in &applied {
        for (&g, &c) in edit.new_gates.iter().zip(&edit.new_gate_cin_ff) {
            assert_eq!(g.index(), cins_after.len(), "dense new ids");
            cins_after.push(c.max(cref));
        }
    }

    let eps = 1e-9;
    for (net, fanout, limit) in fanout_ratios(&edited, &lib, &cins_after, po_load, &mut cache) {
        let Some(limit) = limit else { continue };
        match before.get(&net) {
            // Pre-existing net that respected its limit: must still.
            Some(&f_before) if f_before <= limit => {
                assert!(
                    fanout <= limit + eps,
                    "{net}: was within Flimit ({f_before:.2} <= {limit:.2}), now {fanout:.2}"
                );
            }
            // Buffered over-limit net: strictly relieved.
            Some(&f_before) => {
                assert!(
                    fanout < f_before,
                    "{net}: over-limit net not relieved ({fanout:.2} vs {f_before:.2})"
                );
            }
            // New net (buffer internals): the taper keeps it at or
            // under the inverter pair's own limit.
            None => {
                let inv_limit = cache.get(&lib, CellKind::Inv, CellKind::Inv).unwrap();
                assert!(
                    fanout <= inv_limit + eps,
                    "{net}: buffer stage at {fanout:.2} past the Inv→Inv limit {inv_limit:.2}"
                );
            }
        }
    }
}

#[test]
fn demorgan_rewrites_preserve_truth_tables_on_random_vectors() {
    let base = suite::circuit("fpd").unwrap();
    let names = input_names(&base);
    let mut rng = SplitMix64::new(0xDE40_064A);
    let duals: Vec<GateId> = base
        .gate_ids()
        .filter(|&g| base.gate(g).kind().demorgan_dual().is_some())
        .collect();
    assert!(!duals.is_empty());
    // Rewrite 8 random dualizable gates, one circuit each, plus one
    // circuit rewriting several at once.
    let mut all_at_once = base.clone();
    let mut batch = Vec::new();
    for i in 0..8 {
        let g = *rng.pick(&duals);
        let mut edited = base.clone();
        edited.demorgan_gate(g).unwrap();
        edited.validate().unwrap();
        for _ in 0..16 {
            let v = random_vector(&base, &names, &mut rng);
            assert_eq!(
                base.evaluate(&v).unwrap(),
                edited.evaluate(&v).unwrap(),
                "rewriting {g} changed an output (round {i})"
            );
        }
        if !batch.contains(&g) {
            batch.push(g);
        }
    }
    for &g in &batch {
        all_at_once.demorgan_gate(g).unwrap();
    }
    for _ in 0..24 {
        let v = random_vector(&base, &names, &mut rng);
        assert_eq!(
            base.evaluate(&v).unwrap(),
            all_at_once.evaluate(&v).unwrap(),
            "batched rewrites changed an output"
        );
    }
}

#[test]
fn planned_demorgans_preserve_logic_and_target_only_nors() {
    let lib = Library::cmos025();
    let cref = lib.min_drive_ff();
    let base = suite::circuit("c6288").unwrap(); // the NOR-rich multiplier
    let names = input_names(&base);
    let cins = vec![cref; base.gate_count()];
    let mut cache = FlimitCache::new();
    let candidates: Vec<GateId> = base.gate_ids().collect();
    let plan = plan_demorgan_restructure(&base, &lib, &cins, 10.0, &candidates, &mut cache);
    assert!(!plan.is_empty(), "c6288 carries over-limit NORs");
    for op in plan.ops() {
        let EditOp::DeMorgan { gate, .. } = op else {
            panic!("restructure planner may only emit DeMorgan ops, got {op:?}");
        };
        assert!(matches!(
            base.gate(*gate).kind(),
            CellKind::Nor2 | CellKind::Nor3 | CellKind::Nor4
        ));
    }
    let mut edited = base.clone();
    plan.apply_to(&mut edited).unwrap();
    edited.validate().unwrap();
    let mut rng = SplitMix64::new(0x6288);
    for _ in 0..8 {
        let v = random_vector(&base, &names, &mut rng);
        assert_eq!(
            base.evaluate(&v).unwrap(),
            edited.evaluate(&v).unwrap(),
            "planned De Morgan pass changed an output"
        );
    }
}

#[test]
fn edited_circuits_keep_valid_topo_orders_and_caches() {
    // The cache-staleness property: warm the topo/level caches, edit
    // through every surgery primitive, and check the (re)computed
    // results always describe the post-edit circuit.
    let mut rng = SplitMix64::new(0x7_00CA_C4E5);
    let mut c = suite::circuit("fpd").unwrap();
    for step in 0..20 {
        // Warm both caches.
        let order = c.topo_order().unwrap();
        assert_eq!(order.len(), c.gate_count(), "step {step}: topo covers all");
        let levels = c.logic_levels().unwrap();
        assert_eq!(levels.len(), c.gate_count());

        // Random edit through a random primitive.
        match rng.below(3) {
            0 => {
                let nets: Vec<NetId> = c
                    .net_ids()
                    .filter(|&n| c.driver_gate(n).is_some() && c.net(n).fanout() >= 2)
                    .collect();
                let net = *rng.pick(&nets);
                let loads = c.net(net).loads()[1..].to_vec();
                c.insert_buffer(net, &loads).unwrap();
            }
            1 => {
                let duals: Vec<GateId> = c
                    .gate_ids()
                    .filter(|&g| c.gate(g).kind().demorgan_dual().is_some())
                    .collect();
                c.demorgan_gate(*rng.pick(&duals)).unwrap();
            }
            _ => {
                let nets: Vec<NetId> = c
                    .net_ids()
                    .filter(|&n| c.driver_gate(n).is_some() && c.net(n).fanout() >= 2)
                    .collect();
                let net = *rng.pick(&nets);
                let loads = vec![c.net(net).loads()[0]];
                let new = c.split_net(net, &loads).unwrap();
                // Re-drive the split net so the circuit stays valid.
                let g = c.add_gate_driving(CellKind::Buf, &[net], new).unwrap();
                let _ = g;
            }
        }

        // The caches must already describe the edited circuit: a stale
        // order would have the wrong length or break fanin-first.
        let order = c.topo_order().unwrap();
        assert_eq!(
            order.len(),
            c.gate_count(),
            "step {step}: stale topo cache after surgery"
        );
        let mut pos = vec![usize::MAX; c.gate_count()];
        for (i, &g) in order.iter().enumerate() {
            pos[g.index()] = i;
        }
        for g in c.gate_ids() {
            for &n in c.gate(g).inputs() {
                if let Some(src) = c.driver_gate(n) {
                    assert!(
                        pos[src.index()] < pos[g.index()],
                        "step {step}: topo order violates fanin-first"
                    );
                }
            }
        }
        let levels = c.logic_levels().unwrap();
        assert_eq!(
            levels.len(),
            c.gate_count(),
            "step {step}: stale level cache after surgery"
        );
        c.validate().unwrap();
    }
}
