//! Randomized backward equivalence: the incremental backward state of a
//! [`TimingGraph`] — per-net required times, slacks, the design-worst
//! slack and the k-paths completion bounds — must match a from-scratch
//! backward pass (`required_times` over a fresh `analyze_with` report,
//! `completion_bounds` over the same) after **every** step of a random
//! resize sequence. The mirror of `tests/incremental_equivalence.rs`
//! for the reverse direction.
//!
//! Seeded via `pops_netlist::rng::SplitMix64`, so failures reproduce.

use pops::netlist::rng::SplitMix64;
use pops::prelude::*;
use pops::sta::analysis::{analyze_with, AnalyzeOptions, EdgeDir};
use pops::sta::{completion_bounds, TimingGraph};

fn assert_backward_equivalent(graph: &TimingGraph, circuit: &Circuit, lib: &Library, step: usize) {
    let tc = graph.constraint_ps().expect("constraint set");
    let fresh = analyze_with(circuit, lib, graph.sizing(), graph.options())
        .expect("suite circuits are valid");
    let slacks =
        required_times(circuit, lib, graph.sizing(), &fresh, tc).expect("suite circuits are valid");
    let name = circuit.name();
    for net in circuit.net_ids() {
        for dir in [EdgeDir::Rising, EdgeDir::Falling] {
            assert_eq!(
                graph.required_ps(net, dir).to_bits(),
                slacks.required_ps(net, dir).to_bits(),
                "{name} step {step}: required of {net} {dir:?}: {} vs {}",
                graph.required_ps(net, dir),
                slacks.required_ps(net, dir)
            );
            assert_eq!(
                graph.slack_ps(net, dir).to_bits(),
                slacks.slack_ps(net, dir).to_bits(),
                "{name} step {step}: slack of {net} {dir:?}"
            );
        }
        assert_eq!(
            graph.worst_slack_ps(net).to_bits(),
            slacks.worst_slack_ps(net).to_bits(),
            "{name} step {step}: worst slack of {net}"
        );
    }
    assert_eq!(
        graph.worst_slack_overall_ps().map(f64::to_bits),
        slacks.worst_slack_overall_ps().map(f64::to_bits),
        "{name} step {step}: design-worst slack diverged"
    );
    // The k-paths completion bounds ride on the same backward machinery.
    let bounds = completion_bounds(circuit, &fresh);
    for g in circuit.gate_ids() {
        assert_eq!(
            graph.completion_ps(g).to_bits(),
            bounds[g.index()].to_bits(),
            "{name} step {step}: completion bound of {g}"
        );
    }
}

fn random_resize_sequence(name: &str, seed: u64, steps: usize) {
    let lib = Library::cmos025();
    let circuit = suite::circuit(name).expect("suite circuit exists");
    let mut rng = SplitMix64::new(seed);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib))
        .expect("suite circuits are acyclic");
    // A tight-but-feasible constraint so slacks straddle zero.
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();

    for step in 0..steps {
        // Mix single resizes with occasional small batches (the flow's
        // write-back pattern) and occasional shrink-back-to-minimum —
        // the same move distribution as the forward equivalence suite.
        match rng.below(4) {
            0 => {
                let batch: Vec<(GateId, f64)> = (0..2 + rng.below(6))
                    .map(|_| {
                        let g = *rng.pick(&gates);
                        (g, cref * (1.0 + 30.0 * rng.next_f64()))
                    })
                    .collect();
                graph.resize_gates(batch);
            }
            1 => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref);
            }
            _ => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref * (1.0 + 30.0 * rng.next_f64()));
            }
        }
        assert_backward_equivalent(&graph, &circuit, &lib, step);
    }

    // After the whole sequence the K-paths ranking through the cached
    // completion bounds agrees with the one through a fresh report.
    let fresh = analyze_with(&circuit, &lib, graph.sizing(), graph.options()).unwrap();
    let via_graph = k_most_critical_paths(&circuit, &graph, 8);
    let via_fresh = k_most_critical_paths(&circuit, &fresh, 8);
    assert_eq!(via_graph.len(), via_fresh.len());
    for (a, b) in via_graph.iter().zip(&via_fresh) {
        assert_eq!(a.gates, b.gates, "{name}: k-paths diverged");
    }
}

#[test]
fn fpd_random_resizes_match_full_backward_pass() {
    random_resize_sequence("fpd", 0xBAC0_F00D, 50);
}

#[test]
fn c432_random_resizes_match_full_backward_pass() {
    random_resize_sequence("c432", 0xBAC0_0432, 50);
}

#[test]
fn c880_random_resizes_match_full_backward_pass() {
    random_resize_sequence("c880", 0xBAC0_0880, 50);
}

#[test]
fn c1908_random_resizes_match_full_backward_pass() {
    random_resize_sequence("c1908", 0xBAC0_1908, 50);
}

#[test]
fn c6288_random_resizes_match_full_backward_pass() {
    // The multiplier is the heavyweight: fewer steps keep the fresh
    // reference passes (one per step) affordable in debug builds.
    random_resize_sequence("c6288", 0xBAC0_6288, 20);
}

#[test]
fn c7552_random_resizes_match_full_backward_pass() {
    random_resize_sequence("c7552", 0xBAC0_7552, 20);
}

#[test]
fn option_and_constraint_changes_interleaved_with_resizes_match() {
    let lib = Library::cmos025();
    let circuit = suite::circuit("fpd").unwrap();
    let mut rng = SplitMix64::new(0x0B97_1CAF);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    let t0 = graph.critical_delay_ps();
    graph.set_constraint(t0);
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();
    for step in 0..24 {
        match step % 6 {
            4 => {
                // Option changes invalidate and rebuild the backward
                // state wholesale.
                graph.set_options(&AnalyzeOptions {
                    po_load_ff: 5.0 + 40.0 * rng.next_f64(),
                    input_transition_ps: 20.0 + 100.0 * rng.next_f64(),
                });
            }
            5 => {
                // Constraint moves force a full backward refresh too
                // (required times are subtract-chains from tc).
                graph.set_constraint(t0 * (0.7 + 0.6 * rng.next_f64()));
            }
            _ => {
                let g = *rng.pick(&gates);
                graph.resize_gate(g, cref * (1.0 + 20.0 * rng.next_f64()));
            }
        }
        assert_backward_equivalent(&graph, &circuit, &lib, step);
    }
}

#[test]
fn backward_work_is_a_fraction_of_full_backward_passes() {
    // The point of the backward engine: over a long random sequence the
    // average re-derived backward cone must be well below one full
    // backward pass (one required evaluation per net) per step. A slack
    // read per step keeps each flush covering exactly one resize — the
    // backward state is lazy, so an unqueried sequence would do no
    // backward work at all (that property has its own test in
    // `tests/lazy_equivalence.rs`).
    let lib = Library::cmos025();
    let circuit = suite::circuit("c880").unwrap();
    let mut rng = SplitMix64::new(0x57A7_BACC);
    let mut graph = TimingGraph::new(&circuit, &lib, &Sizing::minimum(&circuit, &lib)).unwrap();
    graph.set_constraint(0.9 * graph.critical_delay_ps());
    let _ = graph.worst_slack_overall_ps(); // settle the initial pass
    let after_build = graph.stats();
    let gates: Vec<GateId> = circuit.gate_ids().collect();
    let cref = lib.min_drive_ff();
    let steps = 200;
    for _ in 0..steps {
        let g = *rng.pick(&gates);
        graph.resize_gate(g, cref * (1.0 + 10.0 * rng.next_f64()));
        let _ = graph.worst_slack_overall_ps();
    }
    let full_equivalent = steps * circuit.net_count();
    let actual = graph.stats().required_reevaluated - after_build.required_reevaluated;
    assert!(
        actual * 2 < full_equivalent,
        "incremental backward {actual} vs full-pass equivalent {full_equivalent}"
    );
}
