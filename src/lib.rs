//! POPS — Low Power Oriented CMOS Circuit Optimization Protocol.
//!
//! A from-scratch Rust reproduction of Verle, Michel, Azemard, Maurine &
//! Auvergne, *"Low Power Oriented CMOS Circuit Optimization Protocol"*,
//! DATE 2005: deterministic selection between **gate sizing**, **buffer
//! insertion** and **De Morgan logic restructuring** to satisfy a delay
//! constraint on a combinational path at minimum area (power).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `pops-netlist` | cells, circuits, `.bench` I/O, benchmark suite |
//! | [`delay`] | `pops-delay` | the closed-form timing model (eqs. 1–3) |
//! | [`sta`] | `pops-sta` | static timing analysis, K critical paths |
//! | [`spice`] | `pops-spice` | transistor-level transient simulator |
//! | [`core`] | `pops-core` | bounds, constant sensitivity, `Flimit`, protocol |
//! | [`amps`] | `pops-amps` | iterative industrial-style baselines |
//!
//! # Quickstart
//!
//! ```
//! use pops::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A bounded path: latch-pinned input drive, fixed terminal load.
//! let lib = Library::cmos025();
//! let path = TimedPath::new(
//!     vec![
//!         PathStage::new(CellKind::Inv),
//!         PathStage::new(CellKind::Nand2),
//!         PathStage::with_load(CellKind::Nor3, 25.0),
//!         PathStage::new(CellKind::Inv),
//!     ],
//!     lib.min_drive_ff(),
//!     100.0,
//! );
//!
//! // 1. Explore the design space: is the constraint feasible at all?
//! let bounds = delay_bounds(&lib, &path);
//! let tc = 1.3 * bounds.tmin_ps;
//!
//! // 2. Run the protocol: it picks sizing / buffering / restructuring.
//! let outcome = optimize(&lib, &path, tc, &ProtocolOptions::default())?;
//! assert!(outcome.delay_ps <= tc * 1.001);
//! println!("area = {:.1} um via {:?}", outcome.area_um, outcome.technique);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pops_amps as amps;
pub use pops_core as core;
pub use pops_delay as delay;
pub use pops_netlist as netlist;
pub use pops_spice as spice;
pub use pops_sta as sta;

pub mod flow;
pub mod gradient;

/// Everything needed for typical protocol runs, in one import.
pub mod prelude {
    pub use pops_core::bounds::{delay_bounds, tmax, tmin, DelayBounds};
    pub use pops_core::buffer::{flimit, insert_buffers};
    pub use pops_core::protocol::{
        optimize, ConstraintClass, ProtocolOptions, ProtocolOutcome, Technique,
    };
    pub use pops_core::restructure::demorgan_restructure;
    pub use pops_core::sensitivity::{distribute_constraint, ConstraintSolution};
    pub use pops_core::OptimizeError;
    pub use pops_delay::{CornerSet, Edge, Library, PathStage, Process, TimedPath};
    pub use pops_netlist::prelude::*;
    pub use pops_sta::analysis::analyze;
    pub use pops_sta::{
        extract_timed_path, k_most_critical_paths, required_times, ExtractOptions, Sizing,
        SlackView, TimingGraph, TimingView,
    };
}
