//! Circuit-level optimization flow: the paper's "user specified limited
//! number of paths" loop (§2.1, refs. [11]–[12]).
//!
//! POPS does not size whole circuits monolithically; it analyzes once,
//! extracts the K most critical paths, optimizes each as a bounded path
//! (most critical first), writes the sizes back, and re-times. This
//! module packages that loop over the workspace crates.

use pops_core::protocol::{optimize, ProtocolOptions, Technique};
use pops_core::OptimizeError;
use pops_delay::Library;
use pops_netlist::{Circuit, GateId, NetlistError};
use pops_sta::analysis::EdgeDir;
use pops_sta::{extract_timed_path, k_most_critical_paths, ExtractOptions, Sizing, TimingGraph};

/// Options for a circuit-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOptions {
    /// How many critical paths to optimize per round (the paper's
    /// "user specified limited number of paths").
    pub paths_per_round: usize,
    /// Maximum optimize/re-time rounds.
    pub max_rounds: usize,
    /// Protocol options for each path (structure modification is
    /// disabled internally: netlist write-back requires structure
    /// conservation; buffering decisions are reported instead).
    pub protocol: ProtocolOptions,
    /// Extraction options (latch loads, input slopes).
    pub extract: ExtractOptions,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            paths_per_round: 8,
            max_rounds: 8,
            protocol: ProtocolOptions::default(),
            extract: ExtractOptions::default(),
        }
    }
}

/// Per-round growth cap: a gate may grow by at most this factor per
/// round. Damps the side-load shock a freshly upsized path inflicts on
/// its fan-in cone (upsizing a pin slows the gate that drives it).
const ROUND_GROWTH_CAP: f64 = 3.0;

/// Errors from the circuit-level flow.
#[derive(Debug)]
pub enum FlowError {
    /// The netlist is structurally broken.
    Netlist(NetlistError),
    /// A path could not satisfy the constraint even after modification.
    Optimize(OptimizeError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Optimize(e) => write!(f, "optimization error: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

impl From<OptimizeError> for FlowError {
    fn from(e: OptimizeError) -> Self {
        FlowError::Optimize(e)
    }
}

/// Result of a circuit-level optimization.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// Final sizing of every gate.
    pub sizing: Sizing,
    /// Critical delay before optimization (ps).
    pub initial_delay_ps: f64,
    /// Critical delay after optimization (ps).
    pub final_delay_ps: f64,
    /// Total input capacitance after optimization (fF).
    pub total_cin_ff: f64,
    /// Paths optimized.
    pub paths_optimized: usize,
    /// Paths where the protocol would have modified the structure
    /// (buffering/restructuring recommended but not applied to the
    /// netlist; candidates for a follow-up netlist edit).
    pub structure_recommendations: usize,
    /// Rounds executed.
    pub rounds: usize,
}

/// Optimize a circuit's K most critical paths under `tc_ps`.
///
/// Round structure: time the design, enumerate the K worst paths, run
/// the Fig. 7 protocol on each (structure-conserving candidates are
/// written back; structure modifications are counted as
/// recommendations), re-time, repeat until the constraint holds at
/// every output or the round budget is exhausted.
///
/// # Errors
///
/// [`FlowError::Netlist`] for structural problems. An infeasible path is
/// *not* an error: the flow reports the best delay reached; callers
/// check `final_delay_ps` against `tc_ps`.
///
/// # Example
///
/// ```
/// use pops::flow::{optimize_circuit, FlowOptions};
/// use pops::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::cmos025();
/// let adder = pops::netlist::builders::ripple_carry_adder(4);
/// let baseline = {
///     let s = Sizing::minimum(&adder, &lib);
///     analyze(&adder, &lib, &s)?.critical_delay_ps()
/// };
/// let result = optimize_circuit(&adder, &lib, 0.8 * baseline, &FlowOptions::default())?;
/// assert!(result.final_delay_ps < baseline);
/// # Ok(())
/// # }
/// ```
pub fn optimize_circuit(
    circuit: &Circuit,
    lib: &Library,
    tc_ps: f64,
    options: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    assert!(tc_ps > 0.0, "constraint must be positive");
    // The timing picture is built once and kept consistent through
    // incremental dirty-cone updates: each round's write-backs re-time
    // only the cones the resized gates actually perturb, instead of
    // re-running a full `analyze` pass per round. Setting the constraint
    // additionally maintains the backward state — per-net required
    // times and the k-paths completion bounds — so every slack read and
    // path extraction below is O(cone), not a fresh backward pass.
    let mut graph = TimingGraph::new(circuit, lib, &Sizing::minimum(circuit, lib))?;
    graph.set_constraint(tc_ps);
    let initial_delay_ps = graph.critical_delay_ps();

    // Structure modification cannot be written back into the netlist by
    // this flow; run the protocol with conservation only and count what
    // a structural pass would have done.
    let conserve = ProtocolOptions {
        allow_buffers: false,
        allow_restructuring: false,
        ..options.protocol.clone()
    };

    let mut paths_optimized = 0;
    let mut structure_recommendations = 0;
    let mut rounds = 0;
    let mut best_sizing = graph.sizing().clone();
    let mut best_delay = initial_delay_ps;

    for _ in 0..options.max_rounds {
        rounds += 1;
        // Slack-driven convergence: stop when no net misses its
        // required time (equivalently the critical delay meets tc, but
        // read straight off the maintained backward state).
        if !matches!(graph.worst_slack_overall_ps(), Some(s) if s < 0.0) {
            break;
        }
        let round_start = graph.sizing().clone();
        let paths = k_most_critical_paths(circuit, &graph, options.paths_per_round);
        let mut any_change = false;
        for path in &paths {
            let Some(&last) = path.gates.last() else {
                continue;
            };
            let endpoint = circuit.gate(last).output();
            // Slack-driven selection: skip endpoints already meeting
            // their required time. At a pure primary output this is
            // exactly `arrival <= tc`; where the PO net also feeds
            // internal logic the requirement is tighter.
            if graph.worst_slack_ps(endpoint) >= 0.0 {
                continue;
            }
            // The per-path budget is the endpoint's required time, not
            // the raw constraint (guarded for pathological sub-zero
            // requirements under unreachable constraints).
            let required = graph
                .required_ps(endpoint, EdgeDir::Rising)
                .min(graph.required_ps(endpoint, EdgeDir::Falling));
            let budget = if required.is_finite() && required > 0.0 {
                required
            } else {
                tc_ps
            };
            let extracted =
                extract_timed_path(circuit, lib, graph.sizing(), path, &options.extract);
            let solution = match optimize(lib, &extracted.timed, budget, &conserve) {
                Ok(outcome) => {
                    debug_assert_eq!(outcome.technique, Technique::SizingOnly);
                    Some(outcome.sizes)
                }
                Err(OptimizeError::Infeasible { .. }) => {
                    // Would need buffers/restructuring: check whether the
                    // full protocol could rescue it, then at least push
                    // the path toward its sizing Tmin.
                    if optimize(lib, &extracted.timed, budget, &options.protocol).is_ok() {
                        structure_recommendations += 1;
                    }
                    let bounds = pops_core::bounds::delay_bounds(lib, &extracted.timed);
                    Some(bounds.tmin_sizes)
                }
                Err(e) => return Err(e.into()),
            };
            if let Some(mut sizes) = solution {
                // Damp per-round growth to keep the fan-in cones of the
                // resized gates from being shocked by sudden pin loads.
                for (s, &g) in sizes.iter_mut().zip(&extracted.gates) {
                    let cap = round_start.cin_ff(g) * ROUND_GROWTH_CAP;
                    *s = s.min(cap).max(lib.min_drive_ff());
                }
                sizes[0] = extracted.timed.source_drive_ff();
                // One batched dirty-cone re-time for the whole path.
                let changes: Vec<(GateId, f64)> = extracted
                    .gates
                    .iter()
                    .copied()
                    .zip(sizes.iter().copied())
                    .collect();
                graph.resize_gates(changes);
                paths_optimized += 1;
                any_change = true;
            }
        }
        if graph.critical_delay_ps() < best_delay {
            best_delay = graph.critical_delay_ps();
            best_sizing = graph.sizing().clone();
        }
        if !any_change {
            break;
        }
    }

    Ok(FlowResult {
        final_delay_ps: best_delay,
        total_cin_ff: best_sizing.total_cin_ff(),
        sizing: best_sizing,
        initial_delay_ps,
        paths_optimized,
        structure_recommendations,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_netlist::builders::ripple_carry_adder;
    use pops_netlist::suite;
    use pops_sta::analysis::analyze;

    #[test]
    fn flow_speeds_up_an_adder() {
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(8);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&adder, &lib, 0.7 * t0, &FlowOptions::default()).unwrap();
        assert!(r.final_delay_ps < t0);
        assert!(r.paths_optimized > 0);
    }

    #[test]
    fn met_constraint_converges_quickly() {
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        // Already met: one analysis round, no sizing changes.
        let r = optimize_circuit(&adder, &lib, 1.5 * t0, &FlowOptions::default()).unwrap();
        assert_eq!(r.paths_optimized, 0);
        assert!((r.final_delay_ps - t0).abs() < 1e-9);
    }

    #[test]
    fn flow_runs_on_a_suite_circuit() {
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s0 = Sizing::minimum(&c, &lib);
        let t0 = analyze(&c, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&c, &lib, 0.85 * t0, &FlowOptions::default()).unwrap();
        assert!(r.final_delay_ps < t0);
        // Area grew relative to all-minimum (speed costs capacitance).
        assert!(r.total_cin_ff > s0.total_cin_ff());
    }

    #[test]
    fn final_sizing_slack_matches_the_reported_delay() {
        use pops_sta::required_times;
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(6);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        for factor in [0.85, 0.95] {
            let tc = factor * t0;
            let r = optimize_circuit(&adder, &lib, tc, &FlowOptions::default()).unwrap();
            // The slack picture under the returned sizing agrees with
            // the reported delay: in a pure-PO circuit the design-worst
            // slack is exactly tc − critical delay, and it is
            // non-negative precisely when the constraint was met.
            let report = analyze(&adder, &lib, &r.sizing).unwrap();
            let slacks = required_times(&adder, &lib, &r.sizing, &report, tc).unwrap();
            let worst = slacks.worst_slack_overall_ps().unwrap();
            assert!(
                (worst - (tc - r.final_delay_ps)).abs() < 1e-9,
                "worst slack {worst} vs tc − delay {}",
                tc - r.final_delay_ps
            );
            assert_eq!(worst >= 0.0, r.final_delay_ps <= tc);
        }
    }

    #[test]
    fn infinite_constraint_is_a_tolerated_noop() {
        // Pre-backward-state behavior: any tc > 0 — including +inf — is
        // accepted, the loop sees nothing to do and reports best effort.
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&adder, &lib, f64::INFINITY, &FlowOptions::default()).unwrap();
        assert_eq!(r.paths_optimized, 0);
        assert!((r.final_delay_ps - t0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_constraints_report_best_effort() {
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&adder, &lib, 0.01 * t0, &FlowOptions::default()).unwrap();
        // Could not meet it, but improved, and flagged structural needs.
        assert!(r.final_delay_ps > 0.01 * t0);
        assert!(r.final_delay_ps < t0);
    }
}
