//! Circuit-level optimization flow: the paper's "user specified limited
//! number of paths" loop (§2.1, refs. [11]–[12]).
//!
//! POPS does not size whole circuits monolithically; it analyzes once,
//! extracts the K most critical paths, optimizes each as a bounded path
//! (most critical first), writes the sizes back, and re-times. Where
//! sizing alone stalls — a path whose required time sits below its
//! sizing-only `Tmin` — the flow now *applies* the paper's structure
//! modifications to the netlist: over-limit nets of the stalled paths
//! get Inv-pair buffers (§4.1), over-limit NORs their De Morgan
//! rewrite (§4.2), both as an [`EditPlan`] written back through
//! [`TimingGraph::apply_edits`], which re-times only the edited cones.

use std::collections::{HashMap, HashSet};

use pops_core::buffer::{plan_buffer_insertions, FlimitCache};
use pops_core::protocol::{optimize, ProtocolOptions, Technique};
use pops_core::restructure::plan_demorgan_restructure;
use pops_core::OptimizeError;
use pops_delay::power::leakage_nw;
use pops_delay::{CornerSet, Library};
use pops_netlist::surgery::{EditOp, EditPlan};
use pops_netlist::{Circuit, GateId, NetId, NetlistError, VtClass};
use pops_sta::analysis::{AnalyzeOptions, EdgeDir, NetlistPath};
use pops_sta::{extract_timed_path, k_most_critical_paths, ExtractOptions, Sizing, TimingGraph};

/// Options for a circuit-level run.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOptions {
    /// How many critical paths to optimize per round (the paper's
    /// "user specified limited number of paths").
    pub paths_per_round: usize,
    /// Maximum optimize/re-time rounds.
    pub max_rounds: usize,
    /// Protocol options for each path. Per-path solving always runs
    /// structure-conserving (sizes write back one-to-one); stalled
    /// paths escalate to netlist surgery when `apply_structure` is on.
    pub protocol: ProtocolOptions,
    /// Extraction options (latch loads, input slopes).
    pub extract: ExtractOptions,
    /// Write structure modifications back into the netlist when sizing
    /// stalls: buffer insertion past `Flimit` and De Morgan rewrites of
    /// over-limit NORs on the stalled critical paths.
    pub apply_structure: bool,
    /// Hard cap on structural edits applied over the whole run.
    pub max_edits: usize,
    /// After sizing converges, demote slack-rich gates to high-Vt cells
    /// to cut subthreshold leakage. Each demotion is probed on a
    /// slow/typical/fast multi-corner timing view and kept only when
    /// the design-worst slack stays non-negative at **every** corner.
    /// Off by default: it adds a multi-corner re-analysis pass, and the
    /// timing-only flows (and their bit-identity tests) don't want it.
    pub vt_assignment: bool,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            paths_per_round: 8,
            max_rounds: 8,
            protocol: ProtocolOptions::default(),
            extract: ExtractOptions::default(),
            apply_structure: true,
            max_edits: 64,
            vt_assignment: false,
        }
    }
}

/// Per-round growth cap: a gate may grow by at most this factor per
/// round. Damps the side-load shock a freshly upsized path inflicts on
/// its fan-in cone (upsizing a pin slows the gate that drives it).
const ROUND_GROWTH_CAP: f64 = 3.0;

/// Errors from the circuit-level flow.
#[derive(Debug)]
pub enum FlowError {
    /// The netlist is structurally broken.
    Netlist(NetlistError),
    /// A path could not satisfy the constraint even after modification.
    Optimize(OptimizeError),
}

impl std::fmt::Display for FlowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlowError::Netlist(e) => write!(f, "netlist error: {e}"),
            FlowError::Optimize(e) => write!(f, "optimization error: {e}"),
        }
    }
}

impl std::error::Error for FlowError {}

impl From<NetlistError> for FlowError {
    fn from(e: NetlistError) -> Self {
        FlowError::Netlist(e)
    }
}

impl From<OptimizeError> for FlowError {
    fn from(e: OptimizeError) -> Self {
        FlowError::Optimize(e)
    }
}

/// Result of a circuit-level optimization.
#[derive(Debug, Clone)]
pub struct FlowResult {
    /// The optimized netlist. Identical in structure to the input
    /// unless structural edits were applied — `sizing` indexes *this*
    /// circuit's gates, so the pair is always consistent.
    pub circuit: Circuit,
    /// Final sizing of every gate of `circuit`.
    pub sizing: Sizing,
    /// Critical delay before optimization (ps).
    pub initial_delay_ps: f64,
    /// Critical delay after optimization (ps).
    pub final_delay_ps: f64,
    /// Total input capacitance after optimization (fF).
    pub total_cin_ff: f64,
    /// Paths optimized.
    pub paths_optimized: usize,
    /// Structural edits present in the returned `circuit` (buffer
    /// pairs + De Morgan rewrites) — the applied successor of the old
    /// advisory `structure_recommendations` count. Counted at the
    /// best-result snapshot, so it always describes `circuit`: edits
    /// applied later that never beat that result are not included.
    pub edits_applied: usize,
    /// Inv-pair buffers inserted past `Flimit` (in `circuit`).
    pub buffers_inserted: usize,
    /// NOR gates replaced by their De Morgan form (in `circuit`).
    pub gates_restructured: usize,
    /// Cumulative design-worst-slack change measured across the edit
    /// applications up to the best-result snapshot (ps; positive = the
    /// edits bought slack). The edits land at conservative initial
    /// sizes, so most of their value is realized by the sizing rounds
    /// that follow.
    pub edit_slack_gain_ps: f64,
    /// Rounds executed.
    pub rounds: usize,
    /// Vt class of every gate of `circuit` (gate-id indexed). All-SVT
    /// unless [`FlowOptions::vt_assignment`] demoted slack-rich gates.
    pub vt_classes: Vec<VtClass>,
    /// Gates demoted to high-Vt by the leakage pass.
    pub hvt_gates: usize,
    /// Total subthreshold leakage of the returned implementation (nW):
    /// every gate's [`leakage_nw`] under its final width and Vt class.
    pub leakage_nw: f64,
    /// Worker panics absorbed by the timing engines during the run
    /// (primary graph plus the multi-corner Vt-assignment graph). Zero
    /// unless fault injection is armed or a delay-model bug fired; each
    /// one was contained by a sequential re-sweep, so a non-zero count
    /// with a passing result means the recovery path did its job.
    pub panic_recoveries: usize,
    /// Sequential full-sweep fallbacks the timing engines ran to
    /// rebuild state after an absorbed panic or detected slab
    /// corruption (primary graph plus the Vt-assignment graph).
    pub sequential_fallbacks: usize,
}

/// Optimize a circuit's K most critical paths under `tc_ps`.
///
/// Round structure: time the design, enumerate the K worst paths, run
/// the structure-conserving sizing protocol on each (sizes write back
/// through batched dirty-cone re-timing), then — when sizing stalled on
/// some paths and slack is still negative — apply the Fig. 7 structure
/// modifications to the netlist itself: Inv-pair buffers on the stalled
/// paths' over-limit nets (keeping the on-path successor direct) and
/// De Morgan rewrites of their over-limit NORs, written back via
/// [`TimingGraph::apply_edits`] so only the edited cones re-time.
/// Repeat until the constraint holds at every output or the round
/// budget is exhausted.
///
/// The input circuit is never mutated: the first applied edit clones it
/// into the graph (copy-on-write), and the edited netlist is returned
/// in [`FlowResult::circuit`].
///
/// # Errors
///
/// [`FlowError::Netlist`] for structural problems. An infeasible path is
/// *not* an error: the flow reports the best delay reached; callers
/// check `final_delay_ps` against `tc_ps`.
///
/// # Example
///
/// ```
/// use pops::flow::{optimize_circuit, FlowOptions};
/// use pops::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::cmos025();
/// let adder = pops::netlist::builders::ripple_carry_adder(4);
/// let baseline = {
///     let s = Sizing::minimum(&adder, &lib);
///     analyze(&adder, &lib, &s)?.critical_delay_ps()
/// };
/// let result = optimize_circuit(&adder, &lib, 0.8 * baseline, &FlowOptions::default())?;
/// assert!(result.final_delay_ps < baseline);
/// # Ok(())
/// # }
/// ```
pub fn optimize_circuit(
    circuit: &Circuit,
    lib: &Library,
    tc_ps: f64,
    options: &FlowOptions,
) -> Result<FlowResult, FlowError> {
    assert!(tc_ps > 0.0, "constraint must be positive");
    // The timing picture is built once and kept consistent through
    // incremental dirty-cone updates that are *lazy in both
    // directions*: a whole round's batched resizes and structural edits
    // only accumulate id-keyed seeds — no `resize_gates` or
    // `apply_edits` call below forces a forward pass — and the first
    // timing read of the next round flushes them as one merged
    // forward-then-backward cone (so overlapping per-path write-backs
    // deduplicate instead of each paying its own propagation). Setting
    // the constraint additionally maintains the backward state —
    // per-net required times, the k-paths completion bounds and the
    // worst-slack tournament tree — under the same generation counter;
    // the design-worst slack reads below are O(1) off the tournament
    // root once flushed.
    let mut graph = TimingGraph::new(circuit, lib, &Sizing::minimum(circuit, lib))?;
    graph.set_constraint(tc_ps);
    let initial_delay_ps = graph.critical_delay_ps();

    // Per-path solving conserves structure (sizes write back onto the
    // existing gates one-to-one); stalled paths escalate to netlist
    // surgery below instead of per-path protocol rewrites.
    let conserve = ProtocolOptions {
        allow_buffers: false,
        allow_restructuring: false,
        ..options.protocol.clone()
    };

    let mut paths_optimized = 0;
    let mut edits_applied = 0;
    let mut buffers_inserted = 0;
    let mut gates_restructured = 0;
    let mut edit_slack_gain_ps = 0.0;
    let mut rounds = 0;
    // Best-result snapshot: delay, sizing, circuit *and* the edit
    // counters are captured together, so the returned `FlowResult`
    // always describes the returned netlist (edits applied after the
    // snapshot — or ones that never beat the pre-edit best — are not
    // reported as part of it).
    let mut best_sizing = graph.sizing().clone();
    let mut best_circuit = circuit.clone();
    let mut best_delay = initial_delay_ps;
    let mut best_edits = (0usize, 0usize, 0usize, 0.0f64);
    let mut flimits = FlimitCache::new();

    for _ in 0..options.max_rounds {
        rounds += 1;
        // Slack-driven convergence: stop when no net misses its
        // required time (equivalently the critical delay meets tc, but
        // read straight off the maintained backward state).
        if !matches!(graph.worst_slack_overall_ps(), Some(s) if s < 0.0) {
            break;
        }
        let round_entry_delay = graph.critical_delay_ps();
        let round_start = graph.sizing().clone();
        let paths = k_most_critical_paths(graph.circuit(), &graph, options.paths_per_round);
        let mut any_change = false;
        // Paths whose constraint sat below the sizing-only Tmin this
        // round: the structure-modification candidates.
        let mut stalled: Vec<NetlistPath> = Vec::new();
        for path in &paths {
            let Some(&last) = path.gates.last() else {
                continue;
            };
            let endpoint = graph.circuit().gate(last).output();
            // Slack-driven selection: skip endpoints already meeting
            // their required time. At a pure primary output this is
            // exactly `arrival <= tc`; where the PO net also feeds
            // internal logic the requirement is tighter.
            if graph.worst_slack_ps(endpoint) >= 0.0 {
                continue;
            }
            // The per-path budget is the endpoint's required time, not
            // the raw constraint (guarded for pathological sub-zero
            // requirements under unreachable constraints).
            let required = graph
                .required_ps(endpoint, EdgeDir::Rising)
                .min(graph.required_ps(endpoint, EdgeDir::Falling));
            let budget = if required.is_finite() && required > 0.0 {
                required
            } else {
                tc_ps
            };
            let extracted =
                extract_timed_path(graph.circuit(), lib, graph.sizing(), path, &options.extract);
            let solution = match optimize(lib, &extracted.timed, budget, &conserve) {
                Ok(outcome) => {
                    debug_assert_eq!(outcome.technique, Technique::SizingOnly);
                    Some(outcome.sizes)
                }
                Err(OptimizeError::Infeasible { .. }) => {
                    // Sizing alone cannot make this path: remember it
                    // for the structural pass and at least push it
                    // toward its sizing Tmin meanwhile.
                    stalled.push(path.clone());
                    let bounds = pops_core::bounds::delay_bounds(lib, &extracted.timed);
                    Some(bounds.tmin_sizes)
                }
                Err(e) => return Err(e.into()),
            };
            if let Some(mut sizes) = solution {
                // Damp per-round growth to keep the fan-in cones of the
                // resized gates from being shocked by sudden pin loads.
                for (s, &g) in sizes.iter_mut().zip(&extracted.gates) {
                    let cap = round_start.cin_ff(g) * ROUND_GROWTH_CAP;
                    *s = s.min(cap).max(lib.min_drive_ff());
                }
                sizes[0] = extracted.timed.source_drive_ff();
                // One batched write-back for the whole path; nothing
                // re-times until the next path's slack read (or the
                // round boundary) flushes every batch since then as
                // one merged cone.
                let changes: Vec<(GateId, f64)> = extracted
                    .gates
                    .iter()
                    .copied()
                    .zip(sizes.iter().copied())
                    .collect();
                graph.resize_gates(changes);
                paths_optimized += 1;
                any_change = true;
            }
        }

        // Structural write-back: when sizing stalled — paths below
        // their sizing-only Tmin *and* no critical-delay progress this
        // round — and slack is still negative, buffer the stalled
        // paths' over-limit nets and De Morgan their over-limit NORs,
        // then re-time the cones.
        let sizing_plateaued = graph.critical_delay_ps() >= round_entry_delay - 1e-9;
        if options.apply_structure
            && sizing_plateaued
            && !stalled.is_empty()
            && edits_applied < options.max_edits
            && matches!(graph.worst_slack_overall_ps(), Some(s) if s < 0.0)
        {
            // One path per round: surgery is cheap to apply but shifts
            // the timing landscape, so edit the most critical stalled
            // path, re-time, and let the next round re-rank before
            // touching more (piling edits onto every stalled path at
            // once was measurably worse on the NOR-rich suite blocks).
            let budget = options.max_edits - edits_applied;
            let plan = plan_structural_edits(&graph, lib, &stalled[..1], &mut flimits, budget);
            if !plan.is_empty() {
                let ws_before = graph.worst_slack_overall_ps().unwrap_or(0.0);
                let applied = graph.apply_edits(&plan)?;
                edits_applied += applied.len();
                for op in plan.ops() {
                    match op {
                        EditOp::InsertBuffer { .. } => buffers_inserted += 1,
                        EditOp::DeMorgan { .. } => gates_restructured += 1,
                        EditOp::ReplaceGate { .. } => {}
                    }
                }
                edit_slack_gain_ps += graph.worst_slack_overall_ps().unwrap_or(0.0) - ws_before;
                any_change = true;
            }
        }

        if graph.critical_delay_ps() < best_delay {
            best_delay = graph.critical_delay_ps();
            best_sizing = graph.sizing().clone();
            best_circuit = graph.circuit().clone();
            best_edits = (
                edits_applied,
                buffers_inserted,
                gates_restructured,
                edit_slack_gain_ps,
            );
        }
        if !any_change {
            break;
        }
    }

    let (edits_applied, buffers_inserted, gates_restructured, edit_slack_gain_ps) = best_edits;

    // Leakage-aware Vt assignment on the best implementation: probe each
    // gate's HVT demotion against a slow/typical/fast multi-corner view
    // and keep it only when the design-worst slack — the worst over
    // *all* corners — stays non-negative. Timing is untouched on the
    // primary corner's critical cone by construction (a kept demotion
    // still meets tc everywhere), and the probe/revert cycle rides the
    // same incremental dirty-cone machinery as sizing.
    let mut vt_classes = vec![VtClass::Svt; best_circuit.gate_count()];
    let mut hvt_gates = 0usize;
    let mut panic_recoveries = 0usize;
    let mut sequential_fallbacks = 0usize;
    if options.vt_assignment {
        let corners = CornerSet::slow_typical_fast(lib.process().clone());
        let mut vt_graph = TimingGraph::with_corners(
            &best_circuit,
            lib,
            &best_sizing,
            &AnalyzeOptions::default(),
            &corners,
        )?;
        vt_graph.set_constraint(tc_ps);
        // Only a design with headroom at every corner can trade any of
        // it for leakage; a failing design keeps its timing-optimal Vt.
        if matches!(vt_graph.worst_slack_overall_ps(), Some(s) if s >= 0.0) {
            for g in best_circuit.gate_ids() {
                vt_graph.set_vt_class(g, VtClass::Hvt);
                if matches!(vt_graph.worst_slack_overall_ps(), Some(s) if s >= 0.0) {
                    vt_classes[g.index()] = VtClass::Hvt;
                    hvt_gates += 1;
                } else {
                    vt_graph.set_vt_class(g, VtClass::Svt);
                }
            }
        }
        let vt_stats = vt_graph.stats();
        panic_recoveries += vt_stats.panic_recoveries;
        sequential_fallbacks += vt_stats.sequential_fallbacks;
    }
    let leakage: f64 = best_circuit
        .gate_ids()
        .map(|g| leakage_nw(lib.process(), vt_classes[g.index()], best_sizing.cin_ff(g)))
        .sum();

    let stats = graph.stats();
    panic_recoveries += stats.panic_recoveries;
    sequential_fallbacks += stats.sequential_fallbacks;

    Ok(FlowResult {
        final_delay_ps: best_delay,
        total_cin_ff: best_sizing.total_cin_ff(),
        circuit: best_circuit,
        sizing: best_sizing,
        initial_delay_ps,
        paths_optimized,
        edits_applied,
        buffers_inserted,
        gates_restructured,
        edit_slack_gain_ps,
        rounds,
        vt_classes,
        hvt_gates,
        leakage_nw: leakage,
        panic_recoveries,
        sequential_fallbacks,
    })
}

/// Build the structural [`EditPlan`] for one round's stalled paths:
/// buffer ops first (a De Morgan rewires its gate's input pins, which
/// would invalidate a later buffer op's recorded pin list), then the
/// De Morgan rewrites, with each path's on-path successor kept on the
/// direct net so the critical chain never detours through a buffer.
fn plan_structural_edits(
    graph: &TimingGraph,
    lib: &Library,
    stalled: &[NetlistPath],
    flimits: &mut FlimitCache,
    budget: usize,
) -> EditPlan {
    let circuit = graph.circuit();
    let cins: Vec<f64> = circuit
        .gate_ids()
        .map(|g| graph.sizing().cin_ff(g))
        .collect();
    let po_load_ff = graph.options().po_load_ff;

    // On-path successor per net, most critical path first.
    let mut on_path_next: HashMap<NetId, GateId> = HashMap::new();
    let mut candidate_gates: Vec<GateId> = Vec::new();
    for path in stalled {
        for (i, &g) in path.gates.iter().enumerate() {
            candidate_gates.push(g);
            if let Some(&next) = path.gates.get(i + 1) {
                on_path_next.entry(circuit.gate(g).output()).or_insert(next);
            }
        }
    }

    // NOR rewrites claim their gates first; buffer candidates are the
    // remaining stalled-path nets (the De Morgan output inverter
    // already provides the buffer's load isolation on rewritten nodes).
    let demorgan =
        plan_demorgan_restructure(circuit, lib, &cins, po_load_ff, &candidate_gates, flimits);
    let rewritten: HashSet<GateId> = demorgan
        .ops()
        .iter()
        .filter_map(|op| match op {
            EditOp::DeMorgan { gate, .. } => Some(*gate),
            _ => None,
        })
        .collect();
    let buffer_nets: Vec<NetId> = candidate_gates
        .iter()
        .filter(|g| !rewritten.contains(g))
        .map(|&g| circuit.gate(g).output())
        .collect();
    // Move a load pin only when it is off the stalled path *and* its
    // endpoint has slack headroom over the buffered net itself — a sink
    // as critical as the net cannot absorb two extra buffer stages.
    let mut plan = plan_buffer_insertions(
        circuit,
        lib,
        &cins,
        po_load_ff,
        &buffer_nets,
        |net, g| {
            if on_path_next.get(&net) == Some(&g) {
                return false;
            }
            graph.worst_slack_ps(circuit.gate(g).output()) > graph.worst_slack_ps(net)
        },
        flimits,
    );
    plan.extend(demorgan);

    // Respect the whole-run edit budget.
    if plan.len() > budget {
        let ops: Vec<EditOp> = plan.ops()[..budget].to_vec();
        return ops.into();
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_netlist::builders::ripple_carry_adder;
    use pops_netlist::suite;
    use pops_sta::analysis::analyze;

    #[test]
    fn flow_speeds_up_an_adder() {
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(8);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&adder, &lib, 0.7 * t0, &FlowOptions::default()).unwrap();
        assert!(r.final_delay_ps < t0);
        assert!(r.paths_optimized > 0);
    }

    #[test]
    fn met_constraint_converges_quickly() {
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        // Already met: one analysis round, no sizing changes.
        let r = optimize_circuit(&adder, &lib, 1.5 * t0, &FlowOptions::default()).unwrap();
        assert_eq!(r.paths_optimized, 0);
        assert!((r.final_delay_ps - t0).abs() < 1e-9);
    }

    #[test]
    fn flow_runs_on_a_suite_circuit() {
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s0 = Sizing::minimum(&c, &lib);
        let t0 = analyze(&c, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&c, &lib, 0.85 * t0, &FlowOptions::default()).unwrap();
        assert!(r.final_delay_ps < t0);
        // Area grew relative to all-minimum (speed costs capacitance).
        assert!(r.total_cin_ff > s0.total_cin_ff());
    }

    #[test]
    fn final_sizing_slack_matches_the_reported_delay() {
        use pops_sta::required_times;
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(6);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        for factor in [0.85, 0.95] {
            let tc = factor * t0;
            let r = optimize_circuit(&adder, &lib, tc, &FlowOptions::default()).unwrap();
            // The slack picture under the returned sizing agrees with
            // the reported delay: in a pure-PO circuit the design-worst
            // slack is exactly tc − critical delay, and it is
            // non-negative precisely when the constraint was met.
            let report = analyze(&adder, &lib, &r.sizing).unwrap();
            let slacks = required_times(&adder, &lib, &r.sizing, &report, tc).unwrap();
            let worst = slacks.worst_slack_overall_ps().unwrap();
            assert!(
                (worst - (tc - r.final_delay_ps)).abs() < 1e-9,
                "worst slack {worst} vs tc − delay {}",
                tc - r.final_delay_ps
            );
            assert_eq!(worst >= 0.0, r.final_delay_ps <= tc);
        }
    }

    #[test]
    fn structural_write_back_beats_sizing_only_when_stalled() {
        // c880 at half its minimum-sizing delay: the constraint sits
        // below several paths' sizing-only Tmin, sizing plateaus, and
        // the flow buffers the stalled paths' over-limit nets. The
        // applied edits must (a) be reported, (b) buy measured slack,
        // and (c) end at a strictly better delay than the
        // structure-conserving flow.
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s0 = Sizing::minimum(&c, &lib);
        let t0 = analyze(&c, &lib, &s0).unwrap().critical_delay_ps();
        let tc = 0.5 * t0;
        let with = optimize_circuit(&c, &lib, tc, &FlowOptions::default()).unwrap();
        let without = optimize_circuit(
            &c,
            &lib,
            tc,
            &FlowOptions {
                apply_structure: false,
                ..FlowOptions::default()
            },
        )
        .unwrap();
        assert!(with.edits_applied > 0, "sizing alone must stall here");
        assert_eq!(
            with.edits_applied,
            with.buffers_inserted + with.gates_restructured
        );
        assert!(
            with.edit_slack_gain_ps > 0.0,
            "edits must buy slack, got {}",
            with.edit_slack_gain_ps
        );
        assert!(
            with.final_delay_ps < without.final_delay_ps,
            "write-back {} !< conserve-only {}",
            with.final_delay_ps,
            without.final_delay_ps
        );
        // The input circuit was never mutated; the result's was grown.
        assert_eq!(c.gate_count(), without.circuit.gate_count());
        assert!(with.circuit.gate_count() > c.gate_count());
        assert_eq!(with.sizing.len(), with.circuit.gate_count());
        with.circuit.validate().unwrap();
    }

    #[test]
    fn write_back_result_is_self_consistent() {
        // The returned (circuit, sizing) pair reproduces the reported
        // delay exactly under a fresh analysis, edits and all.
        let lib = Library::cmos025();
        let c = suite::circuit("c880").unwrap();
        let s0 = Sizing::minimum(&c, &lib);
        let t0 = analyze(&c, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&c, &lib, 0.5 * t0, &FlowOptions::default()).unwrap();
        assert!(r.edits_applied > 0);
        let fresh = analyze(&r.circuit, &lib, &r.sizing).unwrap();
        assert_eq!(
            fresh.critical_delay_ps().to_bits(),
            r.final_delay_ps.to_bits(),
            "reported delay must be reproducible from the returned pair"
        );
        // Logic is preserved through all the edits: the edited netlist
        // computes the same primary outputs as the original.
        let mut rng = pops_netlist::rng::SplitMix64::new(0xF1_0F);
        let names: Vec<String> = c
            .primary_inputs()
            .iter()
            .map(|&n| c.net(n).name().to_string())
            .collect();
        for _ in 0..16 {
            let values: std::collections::HashMap<&str, bool> = names
                .iter()
                .map(|n| (n.as_str(), rng.chance(0.5)))
                .collect();
            assert_eq!(
                c.evaluate(&values).unwrap(),
                r.circuit.evaluate(&values).unwrap(),
                "structural edits changed the logic function"
            );
        }
    }

    #[test]
    fn disabling_structure_keeps_the_netlist_identical() {
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(
            &adder,
            &lib,
            0.01 * t0, // hopeless, would otherwise trigger surgery
            &FlowOptions {
                apply_structure: false,
                ..FlowOptions::default()
            },
        )
        .unwrap();
        assert_eq!(r.edits_applied, 0);
        assert_eq!(r.circuit.gate_count(), adder.gate_count());
        assert_eq!(r.sizing.len(), adder.gate_count());
    }

    #[test]
    fn vt_assignment_trades_slack_for_leakage() {
        // A relaxed constraint leaves most gates slack-rich: the Vt
        // pass must demote a healthy fraction to HVT and the reported
        // leakage must drop below the all-SVT figure — without giving
        // up the constraint at any corner.
        let lib = Library::cmos025();
        let c = suite::circuit("fpd").unwrap();
        let s0 = Sizing::minimum(&c, &lib);
        let t0 = analyze(&c, &lib, &s0).unwrap().critical_delay_ps();
        let tc = 1.5 * t0;
        let base = optimize_circuit(&c, &lib, tc, &FlowOptions::default()).unwrap();
        assert_eq!(base.hvt_gates, 0, "vt assignment is off by default");
        assert!(base.leakage_nw > 0.0);
        assert!(base.vt_classes.iter().all(|&v| v == VtClass::Svt));

        let opts = FlowOptions {
            vt_assignment: true,
            ..FlowOptions::default()
        };
        let r = optimize_circuit(&c, &lib, tc, &opts).unwrap();
        assert!(r.hvt_gates > 0, "relaxed design must absorb demotions");
        assert_eq!(
            r.hvt_gates,
            r.vt_classes.iter().filter(|&&v| v == VtClass::Hvt).count()
        );
        assert!(
            r.leakage_nw < base.leakage_nw,
            "HVT demotion must cut leakage: {} !< {}",
            r.leakage_nw,
            base.leakage_nw
        );
        // The demoted design still meets the constraint at every corner
        // of the slow/typical/fast set.
        let corners = CornerSet::slow_typical_fast(lib.process().clone());
        let mut g = pops_sta::TimingGraph::with_corners(
            &r.circuit,
            &lib,
            &r.sizing,
            &AnalyzeOptions::default(),
            &corners,
        )
        .unwrap();
        for (gate, &class) in r.circuit.gate_ids().zip(&r.vt_classes) {
            g.set_vt_class(gate, class);
        }
        g.set_constraint(tc);
        assert!(matches!(g.worst_slack_overall_ps(), Some(s) if s >= 0.0));
    }

    #[test]
    fn vt_assignment_keeps_a_tight_design_svt() {
        // Right at the typical-corner critical delay the slow corner is
        // failing, so no demotion can keep every corner non-negative —
        // the pass must leave the implementation alone.
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let opts = FlowOptions {
            vt_assignment: true,
            ..FlowOptions::default()
        };
        let r = optimize_circuit(&adder, &lib, 1.001 * t0, &opts).unwrap();
        assert_eq!(r.hvt_gates, 0, "slow corner leaves no headroom");
        assert!(r.vt_classes.iter().all(|&v| v == VtClass::Svt));
    }

    #[test]
    fn infinite_constraint_is_a_tolerated_noop() {
        // Pre-backward-state behavior: any tc > 0 — including +inf — is
        // accepted, the loop sees nothing to do and reports best effort.
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&adder, &lib, f64::INFINITY, &FlowOptions::default()).unwrap();
        assert_eq!(r.paths_optimized, 0);
        assert!((r.final_delay_ps - t0).abs() < 1e-9);
    }

    #[test]
    fn unreachable_constraints_report_best_effort() {
        let lib = Library::cmos025();
        let adder = ripple_carry_adder(4);
        let s0 = Sizing::minimum(&adder, &lib);
        let t0 = analyze(&adder, &lib, &s0).unwrap().critical_delay_ps();
        let r = optimize_circuit(&adder, &lib, 0.01 * t0, &FlowOptions::default()).unwrap();
        // Could not meet it, but improved, and flagged structural needs.
        assert!(r.final_delay_ps > 0.01 * t0);
        assert!(r.final_delay_ps < t0);
    }
}
