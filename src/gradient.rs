//! Circuit-level delay sensitivities via incremental probing.
//!
//! `pops_core::gradient` differentiates a *bounded path* analytically;
//! at the circuit level the critical delay is a max over reconvergent
//! paths and the practical derivative is a finite difference. Before the
//! incremental engine, probing every gate cost one full `analyze()` per
//! gate — O(circuit²) per sweep. With [`TimingGraph`] each probe is two
//! dirty-cone updates (resize + revert), so a whole-circuit sensitivity
//! sweep is O(Σ cone) and the probes are bit-exact against full
//! re-analysis.

use pops_netlist::GateId;
use pops_sta::TimingGraph;

/// Finite-difference sensitivity of the critical delay to each gate's
/// input capacitance: `∂T/∂C_IN(g) ≈ (T(C·(1+h)) − T(C)) / (C·h)`
/// in ps/fF, probed through incremental dirty-cone re-timing.
///
/// The graph is returned to its exact starting state (probes revert
/// bit-identically), so the sweep composes with any surrounding
/// optimization loop.
///
/// A positive entry means upsizing that gate *hurts* (its pin load on
/// the fanin cone dominates); a negative entry means upsizing helps
/// (its drive improvement dominates). Gates off every critical cone
/// report 0.
///
/// # Panics
///
/// Panics if `rel_step <= 0`.
///
/// # Example
///
/// ```
/// use pops::gradient::critical_delay_sensitivities;
/// use pops::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::cmos025();
/// let c = pops::netlist::builders::ripple_carry_adder(4);
/// let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib))?;
/// let grad = critical_delay_sensitivities(&mut graph, 0.05);
/// // At all-minimum sizing, upsizing some critical gate must help.
/// assert!(grad.iter().any(|&g| g < 0.0));
/// # Ok(())
/// # }
/// ```
pub fn critical_delay_sensitivities(graph: &mut TimingGraph, rel_step: f64) -> Vec<f64> {
    assert!(rel_step > 0.0, "relative step must be positive");
    let base = graph.critical_delay_ps();
    // Gate ids are collected up front: `circuit()` now borrows the
    // graph (the graph owns its netlist once structural edits have been
    // applied), so the probe loop cannot hold it across `resize_gate`.
    let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
    let mut grad = Vec::with_capacity(gates.len());
    for g in gates {
        let cin = graph.sizing().cin_ff(g);
        let h = cin * rel_step;
        graph.resize_gate(g, cin + h);
        let probed = graph.critical_delay_ps();
        graph.resize_gate(g, cin);
        grad.push((probed - base) / h);
    }
    grad
}

/// The gate with the most negative sensitivity — the best single
/// upsizing candidate under the current sizing (TILOS's move selection,
/// at dirty-cone cost instead of one full re-analysis per candidate).
///
/// Returns `None` for circuits without gates or when no gate helps.
pub fn best_upsize_candidate(graph: &mut TimingGraph, rel_step: f64) -> Option<(GateId, f64)> {
    let grad = critical_delay_sensitivities(graph, rel_step);
    graph
        .circuit()
        .gate_ids()
        .zip(grad)
        .filter(|&(_, s)| s < 0.0)
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// Finite-difference sensitivity of the design's *worst slack* to each
/// gate's input capacitance: `∂WS/∂C_IN(g)` in ps/fF, probed through
/// incremental forward **and backward** dirty-cone re-timing — each
/// probe re-derives required times over the affected cone only, where a
/// pre-incremental sweep paid one full backward pass (every arc
/// re-evaluated) per gate. Each probe still pays one flat
/// `worst_slack_overall_ps` fold over the net array — no arc
/// re-evaluations, but O(nets); see the ROADMAP's incremental
/// worst-slack tracking item for lifting that too.
///
/// This is the slack-driven replacement for arrival-only ranking: a
/// *positive* entry means upsizing that gate buys slack (its drive
/// improvement outweighs the pin load it adds on the fanin cone);
/// gates off every critical cone report 0. The graph is returned to its
/// exact starting state.
///
/// # Panics
///
/// Panics if `rel_step <= 0`, if no constraint is set
/// ([`TimingGraph::set_constraint`]), or if the circuit has no
/// constrained endpoint (no worst slack to differentiate).
pub fn worst_slack_sensitivities(graph: &mut TimingGraph, rel_step: f64) -> Vec<f64> {
    assert!(rel_step > 0.0, "relative step must be positive");
    let base = graph
        .worst_slack_overall_ps()
        .expect("a constrained endpoint is required to differentiate worst slack");
    let gates: Vec<GateId> = graph.circuit().gate_ids().collect();
    let mut grad = Vec::with_capacity(gates.len());
    for g in gates {
        let cin = graph.sizing().cin_ff(g);
        let h = cin * rel_step;
        graph.resize_gate(g, cin + h);
        let probed = graph
            .worst_slack_overall_ps()
            .expect("probing cannot remove the constrained endpoint");
        graph.resize_gate(g, cin);
        grad.push((probed - base) / h);
    }
    grad
}

/// The gate whose upsizing buys the most slack — slack-driven candidate
/// ranking over the whole circuit, at dirty-cone cost per probe.
///
/// Returns `None` when no gate improves the worst slack.
///
/// # Panics
///
/// As [`worst_slack_sensitivities`].
pub fn best_slack_candidate(graph: &mut TimingGraph, rel_step: f64) -> Option<(GateId, f64)> {
    let grad = worst_slack_sensitivities(graph, rel_step);
    graph
        .circuit()
        .gate_ids()
        .zip(grad)
        .filter(|&(_, s)| s > 0.0)
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_delay::Library;
    use pops_netlist::builders::ripple_carry_adder;
    use pops_sta::analysis::analyze;
    use pops_sta::Sizing;

    #[test]
    fn sensitivities_match_full_reanalysis_probes() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s0 = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s0).unwrap();
        let rel = 0.1;
        let grad = critical_delay_sensitivities(&mut graph, rel);

        // Naive reference: one full analyze per probe.
        let base = analyze(&c, &lib, &s0).unwrap().critical_delay_ps();
        for (g, &got) in c.gate_ids().zip(&grad) {
            let mut probe = s0.clone();
            let cin = probe.cin_ff(g);
            probe.set(g, cin + cin * rel);
            let t = analyze(&c, &lib, &probe).unwrap().critical_delay_ps();
            let want = (t - base) / (cin * rel);
            assert_eq!(got.to_bits(), want.to_bits(), "gate {g}");
        }
    }

    #[test]
    fn sweep_leaves_the_graph_untouched() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(4);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        let before = graph.critical_delay_ps();
        let _ = critical_delay_sensitivities(&mut graph, 0.05);
        assert_eq!(graph.critical_delay_ps().to_bits(), before.to_bits());
    }

    #[test]
    fn best_candidate_actually_improves_delay() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        let before = graph.critical_delay_ps();
        let (g, s) = best_upsize_candidate(&mut graph, 0.1).expect("min sizing must have a move");
        assert!(s < 0.0);
        let cin = graph.sizing().cin_ff(g);
        graph.resize_gate(g, cin * 1.1);
        assert!(graph.critical_delay_ps() < before);
    }

    #[test]
    fn slack_sensitivities_match_full_backward_probes() {
        use pops_sta::required_times;
        let lib = Library::cmos025();
        let c = ripple_carry_adder(5);
        let s0 = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s0).unwrap();
        let tc = 0.9 * graph.critical_delay_ps();
        graph.set_constraint(tc);
        let rel = 0.1;
        let grad = worst_slack_sensitivities(&mut graph, rel);

        // Naive reference: one full analyze + full backward pass per probe.
        let base_report = analyze(&c, &lib, &s0).unwrap();
        let base = required_times(&c, &lib, &s0, &base_report, tc)
            .unwrap()
            .worst_slack_overall_ps()
            .unwrap();
        for (g, &got) in c.gate_ids().zip(&grad) {
            let mut probe = s0.clone();
            let cin = probe.cin_ff(g);
            probe.set(g, cin + cin * rel);
            let r = analyze(&c, &lib, &probe).unwrap();
            let ws = required_times(&c, &lib, &probe, &r, tc)
                .unwrap()
                .worst_slack_overall_ps()
                .unwrap();
            let want = (ws - base) / (cin * rel);
            assert_eq!(got.to_bits(), want.to_bits(), "gate {g}");
        }
    }

    #[test]
    fn slack_sweep_leaves_the_graph_untouched() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(4);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        graph.set_constraint(0.95 * graph.critical_delay_ps());
        let before = graph.worst_slack_overall_ps().unwrap();
        let _ = worst_slack_sensitivities(&mut graph, 0.05);
        assert_eq!(
            graph.worst_slack_overall_ps().unwrap().to_bits(),
            before.to_bits()
        );
    }

    #[test]
    fn best_slack_candidate_actually_buys_slack() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());
        let before = graph.worst_slack_overall_ps().unwrap();
        let (g, s) = best_slack_candidate(&mut graph, 0.1).expect("min sizing must have a move");
        assert!(s > 0.0);
        let cin = graph.sizing().cin_ff(g);
        graph.resize_gate(g, cin * 1.1);
        assert!(graph.worst_slack_overall_ps().unwrap() > before);
    }
}
