//! Circuit-level delay sensitivities via incremental probing.
//!
//! `pops_core::gradient` differentiates a *bounded path* analytically;
//! at the circuit level the critical delay is a max over reconvergent
//! paths and the practical derivative is a finite difference. Before the
//! incremental engine, probing every gate cost one full `analyze()` per
//! gate — O(circuit²) per sweep. With [`TimingGraph`] each probe is two
//! dirty-cone updates (resize + revert), so a whole-circuit sensitivity
//! sweep is O(Σ cone) and the probes are bit-exact against full
//! re-analysis.

use pops_netlist::GateId;
use pops_sta::TimingGraph;

/// Reusable whole-circuit sensitivity sweep.
///
/// The candidate gate-id list (and the probe order derived from it) is
/// collected once and reused across rounds: a caller that re-ranks
/// every round — a TILOS-style loop alternating sweep and move, as in
/// `examples/flow_incremental.rs` — holds one sweep, where the one-shot
/// helpers below re-collect the ids on every call. The list refreshes
/// itself only when the circuit grew (structural edits append gates).
///
/// Probes run in **cheap-cone-first order**: descending topological
/// rank, so the near-output gates — whose resize re-times the smallest
/// forward cones, the cheap majority under the heavily skewed cone-size
/// distribution — are probed before the handful of near-input
/// heavyweights whose cones span a third of the circuit. Each probe is
/// independent (the graph returns to its exact starting state), so the
/// order changes nothing about the values: the result is scattered back
/// to gate-id order, bit-identical to the naive id-order sweep.
#[derive(Debug, Default)]
pub struct SensitivitySweep {
    /// Gate ids in probe order (descending topo rank).
    order: Vec<GateId>,
    /// Result buffer, indexed by gate id.
    grad: Vec<f64>,
}

impl SensitivitySweep {
    /// An empty sweep; buffers fill on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Re-derive the probe order if the circuit changed size.
    fn refresh(&mut self, graph: &TimingGraph) {
        let n = graph.circuit().gate_count();
        if self.order.len() != n {
            let topo = graph
                .circuit()
                .topo_order()
                .expect("a timed graph implies an acyclic circuit");
            self.order.clear();
            self.order.extend(topo.iter().rev());
        }
        self.grad.clear();
        self.grad.resize(n, 0.0);
    }

    /// Finite-difference sensitivities of the critical delay, indexed
    /// by gate id (see [`critical_delay_sensitivities`]).
    ///
    /// # Panics
    ///
    /// Panics if `rel_step <= 0`.
    pub fn critical_delay(&mut self, graph: &mut TimingGraph, rel_step: f64) -> &[f64] {
        assert!(rel_step > 0.0, "relative step must be positive");
        self.refresh(graph);
        let base = graph.critical_delay_ps();
        for i in 0..self.order.len() {
            let g = self.order[i];
            let cin = graph.sizing().cin_ff(g);
            let h = cin * rel_step;
            graph.resize_gate(g, cin + h);
            let probed = graph.critical_delay_ps();
            graph.resize_gate(g, cin);
            self.grad[g.index()] = (probed - base) / h;
        }
        &self.grad
    }

    /// Finite-difference sensitivities of the design-worst slack,
    /// indexed by gate id (see [`worst_slack_sensitivities`]). Each
    /// probe's slack read triggers one merged two-phase lazy flush —
    /// forward then backward — covering the previous probe's revert and
    /// this probe's resize; the resizes themselves never force a pass
    /// in either direction.
    ///
    /// # Panics
    ///
    /// Panics if `rel_step <= 0`, if no constraint is set, or if the
    /// circuit has no constrained endpoint.
    pub fn worst_slack(&mut self, graph: &mut TimingGraph, rel_step: f64) -> &[f64] {
        assert!(rel_step > 0.0, "relative step must be positive");
        self.refresh(graph);
        let base = graph
            .worst_slack_overall_ps()
            .expect("a constrained endpoint is required to differentiate worst slack");
        for i in 0..self.order.len() {
            let g = self.order[i];
            let cin = graph.sizing().cin_ff(g);
            let h = cin * rel_step;
            graph.resize_gate(g, cin + h);
            let probed = graph
                .worst_slack_overall_ps()
                .expect("probing cannot remove the constrained endpoint");
            graph.resize_gate(g, cin);
            self.grad[g.index()] = (probed - base) / h;
        }
        &self.grad
    }
}

/// Finite-difference sensitivity of the critical delay to each gate's
/// input capacitance: `∂T/∂C_IN(g) ≈ (T(C·(1+h)) − T(C)) / (C·h)`
/// in ps/fF, probed through incremental dirty-cone re-timing. The
/// resize and revert only log lazy seeds; each probe's delay read runs
/// one merged forward flush (covering the previous probe's revert cone
/// too), so the sweep never forces an eager pass per mutation.
///
/// The graph is returned to its exact starting state (probes revert
/// bit-identically), so the sweep composes with any surrounding
/// optimization loop.
///
/// A positive entry means upsizing that gate *hurts* (its pin load on
/// the fanin cone dominates); a negative entry means upsizing helps
/// (its drive improvement dominates). Gates off every critical cone
/// report 0.
///
/// # Panics
///
/// Panics if `rel_step <= 0`.
///
/// # Example
///
/// ```
/// use pops::gradient::critical_delay_sensitivities;
/// use pops::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let lib = Library::cmos025();
/// let c = pops::netlist::builders::ripple_carry_adder(4);
/// let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib))?;
/// let grad = critical_delay_sensitivities(&mut graph, 0.05);
/// // At all-minimum sizing, upsizing some critical gate must help.
/// assert!(grad.iter().any(|&g| g < 0.0));
/// # Ok(())
/// # }
/// ```
pub fn critical_delay_sensitivities(graph: &mut TimingGraph, rel_step: f64) -> Vec<f64> {
    // One-shot convenience over [`SensitivitySweep`]; loops that sweep
    // every round hold a sweep instead and reuse its buffers.
    SensitivitySweep::new()
        .critical_delay(graph, rel_step)
        .to_vec()
}

/// The gate with the most negative sensitivity — the best single
/// upsizing candidate under the current sizing (TILOS's move selection,
/// at dirty-cone cost instead of one full re-analysis per candidate).
///
/// Returns `None` for circuits without gates or when no gate helps.
pub fn best_upsize_candidate(graph: &mut TimingGraph, rel_step: f64) -> Option<(GateId, f64)> {
    let grad = critical_delay_sensitivities(graph, rel_step);
    graph
        .circuit()
        .gate_ids()
        .zip(grad)
        .filter(|&(_, s)| s < 0.0)
        .min_by(|a, b| a.1.total_cmp(&b.1))
}

/// Finite-difference sensitivity of the design's *worst slack* to each
/// gate's input capacitance: `∂WS/∂C_IN(g)` in ps/fF, probed through
/// incremental forward and **lazy** backward dirty-cone re-timing —
/// each probe's slack read flushes one merged backward cone (covering
/// the previous probe's revert too), where a pre-incremental sweep paid
/// one full backward pass (every arc re-evaluated) per gate, and the
/// design-worst read itself is O(1) off the maintained tournament tree
/// instead of an O(nets) fold.
///
/// This is the slack-driven replacement for arrival-only ranking: a
/// *positive* entry means upsizing that gate buys slack (its drive
/// improvement outweighs the pin load it adds on the fanin cone);
/// gates off every critical cone report 0. The graph is returned to its
/// exact starting state.
///
/// # Panics
///
/// Panics if `rel_step <= 0`, if no constraint is set
/// ([`TimingGraph::set_constraint`]), or if the circuit has no
/// constrained endpoint (no worst slack to differentiate).
pub fn worst_slack_sensitivities(graph: &mut TimingGraph, rel_step: f64) -> Vec<f64> {
    SensitivitySweep::new()
        .worst_slack(graph, rel_step)
        .to_vec()
}

/// The gate whose upsizing buys the most slack — slack-driven candidate
/// ranking over the whole circuit, at dirty-cone cost per probe.
///
/// Returns `None` when no gate improves the worst slack.
///
/// # Panics
///
/// As [`worst_slack_sensitivities`].
pub fn best_slack_candidate(graph: &mut TimingGraph, rel_step: f64) -> Option<(GateId, f64)> {
    let grad = worst_slack_sensitivities(graph, rel_step);
    graph
        .circuit()
        .gate_ids()
        .zip(grad)
        .filter(|&(_, s)| s > 0.0)
        .max_by(|a, b| a.1.total_cmp(&b.1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pops_delay::Library;
    use pops_netlist::builders::ripple_carry_adder;
    use pops_sta::analysis::analyze;
    use pops_sta::Sizing;

    #[test]
    fn sensitivities_match_full_reanalysis_probes() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let s0 = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s0).unwrap();
        let rel = 0.1;
        let grad = critical_delay_sensitivities(&mut graph, rel);

        // Naive reference: one full analyze per probe.
        let base = analyze(&c, &lib, &s0).unwrap().critical_delay_ps();
        for (g, &got) in c.gate_ids().zip(&grad) {
            let mut probe = s0.clone();
            let cin = probe.cin_ff(g);
            probe.set(g, cin + cin * rel);
            let t = analyze(&c, &lib, &probe).unwrap().critical_delay_ps();
            let want = (t - base) / (cin * rel);
            assert_eq!(got.to_bits(), want.to_bits(), "gate {g}");
        }
    }

    #[test]
    fn reused_sweep_matches_the_one_shot_helpers() {
        // One `SensitivitySweep` across rounds (the flow's pattern)
        // returns bit-identical gradients to the per-call helpers, and
        // its buffers survive circuit growth.
        let lib = Library::cmos025();
        let c = ripple_carry_adder(5);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());
        let mut sweep = SensitivitySweep::new();
        for round in 0..3 {
            let via_sweep = sweep.worst_slack(&mut graph, 0.1).to_vec();
            let via_helper = worst_slack_sensitivities(&mut graph, 0.1);
            for (g, (a, b)) in via_sweep.iter().zip(&via_helper).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "round {round} gate {g}");
            }
            // Apply the best move so later rounds see changed state.
            if let Some((g, _)) = best_slack_candidate(&mut graph, 0.1) {
                let cin = graph.sizing().cin_ff(g);
                graph.resize_gate(g, cin * 1.1);
            }
        }
    }

    #[test]
    fn sweep_leaves_the_graph_untouched() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(4);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        let before = graph.critical_delay_ps();
        let _ = critical_delay_sensitivities(&mut graph, 0.05);
        assert_eq!(graph.critical_delay_ps().to_bits(), before.to_bits());
    }

    #[test]
    fn best_candidate_actually_improves_delay() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        let before = graph.critical_delay_ps();
        let (g, s) = best_upsize_candidate(&mut graph, 0.1).expect("min sizing must have a move");
        assert!(s < 0.0);
        let cin = graph.sizing().cin_ff(g);
        graph.resize_gate(g, cin * 1.1);
        assert!(graph.critical_delay_ps() < before);
    }

    #[test]
    fn slack_sensitivities_match_full_backward_probes() {
        use pops_sta::required_times;
        let lib = Library::cmos025();
        let c = ripple_carry_adder(5);
        let s0 = Sizing::minimum(&c, &lib);
        let mut graph = TimingGraph::new(&c, &lib, &s0).unwrap();
        let tc = 0.9 * graph.critical_delay_ps();
        graph.set_constraint(tc);
        let rel = 0.1;
        let grad = worst_slack_sensitivities(&mut graph, rel);

        // Naive reference: one full analyze + full backward pass per probe.
        let base_report = analyze(&c, &lib, &s0).unwrap();
        let base = required_times(&c, &lib, &s0, &base_report, tc)
            .unwrap()
            .worst_slack_overall_ps()
            .unwrap();
        for (g, &got) in c.gate_ids().zip(&grad) {
            let mut probe = s0.clone();
            let cin = probe.cin_ff(g);
            probe.set(g, cin + cin * rel);
            let r = analyze(&c, &lib, &probe).unwrap();
            let ws = required_times(&c, &lib, &probe, &r, tc)
                .unwrap()
                .worst_slack_overall_ps()
                .unwrap();
            let want = (ws - base) / (cin * rel);
            assert_eq!(got.to_bits(), want.to_bits(), "gate {g}");
        }
    }

    #[test]
    fn slack_sweep_leaves_the_graph_untouched() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(4);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        graph.set_constraint(0.95 * graph.critical_delay_ps());
        let before = graph.worst_slack_overall_ps().unwrap();
        let _ = worst_slack_sensitivities(&mut graph, 0.05);
        assert_eq!(
            graph.worst_slack_overall_ps().unwrap().to_bits(),
            before.to_bits()
        );
    }

    #[test]
    fn best_slack_candidate_actually_buys_slack() {
        let lib = Library::cmos025();
        let c = ripple_carry_adder(6);
        let mut graph = TimingGraph::new(&c, &lib, &Sizing::minimum(&c, &lib)).unwrap();
        graph.set_constraint(0.9 * graph.critical_delay_ps());
        let before = graph.worst_slack_overall_ps().unwrap();
        let (g, s) = best_slack_candidate(&mut graph, 0.1).expect("min sizing must have a move");
        assert!(s > 0.0);
        let cin = graph.sizing().cin_ff(g);
        graph.resize_gate(g, cin * 1.1);
        assert!(graph.worst_slack_overall_ps().unwrap() > before);
    }
}
